#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fsaic {

namespace {

/// State for one bisection of the vertex subset `verts` (side 0 / side 1).
/// `side` is indexed by global vertex id; vertices outside the subset hold -1.
struct Bisection {
  std::vector<index_t> side;
  index_t size0 = 0;
  index_t size1 = 0;
};

/// Grow side 0 from a pseudo-peripheral seed by BFS until it reaches
/// `target0` vertices; everything else in the subset becomes side 1.
Bisection grow_bisection(const Graph& g, std::span<const index_t> verts,
                         index_t target0, Rng& rng) {
  Bisection b;
  b.side.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (index_t v : verts) {
    b.side[static_cast<std::size_t>(v)] = 1;
  }
  b.size1 = static_cast<index_t>(verts.size());

  std::vector<bool> visited(static_cast<std::size_t>(g.num_vertices()), false);
  auto in_subset = [&](index_t v) { return b.side[static_cast<std::size_t>(v)] >= 0; };

  while (b.size0 < target0) {
    // Pick an unvisited vertex in the subset as a component seed; improve it
    // with the pseudo-peripheral sweep so the level sets cut cleanly.
    index_t seed = -1;
    // Randomized probe first (cheap, avoids always starting at low ids),
    // then deterministic scan.
    for (int t = 0; t < 4 && seed < 0; ++t) {
      const index_t cand = verts[static_cast<std::size_t>(
          rng.next_index(static_cast<index_t>(verts.size())))];
      if (!visited[static_cast<std::size_t>(cand)] &&
          b.side[static_cast<std::size_t>(cand)] == 1) {
        seed = cand;
      }
    }
    if (seed < 0) {
      for (index_t v : verts) {
        if (!visited[static_cast<std::size_t>(v)] &&
            b.side[static_cast<std::size_t>(v)] == 1) {
          seed = v;
          break;
        }
      }
    }
    FSAIC_CHECK(seed >= 0, "ran out of seeds before reaching target size");
    seed = g.pseudo_peripheral(seed, b.side, 1);

    std::deque<index_t> queue{seed};
    visited[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty() && b.size0 < target0) {
      const index_t v = queue.front();
      queue.pop_front();
      if (b.side[static_cast<std::size_t>(v)] == 1) {
        b.side[static_cast<std::size_t>(v)] = 0;
        ++b.size0;
        --b.size1;
      }
      for (index_t u : g.neighbors(v)) {
        if (in_subset(u) && !visited[static_cast<std::size_t>(u)] &&
            b.side[static_cast<std::size_t>(u)] == 1) {
          visited[static_cast<std::size_t>(u)] = true;
          queue.push_back(u);
        }
      }
    }
    // If the BFS exhausted a connected component, the outer loop reseeds.
  }
  return b;
}

/// Gain of moving v to the other side: (cut edges removed) - (cut edges added).
index_t move_gain(const Graph& g, const Bisection& b, index_t v) {
  const index_t mine = b.side[static_cast<std::size_t>(v)];
  index_t external = 0;
  index_t internal = 0;
  for (index_t u : g.neighbors(v)) {
    const index_t s = b.side[static_cast<std::size_t>(u)];
    if (s < 0) continue;  // outside the current subset
    if (s == mine) {
      ++internal;
    } else {
      ++external;
    }
  }
  return external - internal;
}

/// One FM-style sweep: repeatedly move the best boundary vertex while the
/// move keeps both sides within tolerance; each vertex moves at most once per
/// sweep. Returns true if the cut improved.
bool refine_pass(const Graph& g, std::span<const index_t> verts, Bisection& b,
                 index_t target0, double tol) {
  const auto n_sub = static_cast<index_t>(verts.size());
  const index_t target1 = n_sub - target0;
  const auto lo0 = static_cast<index_t>(target0 * (1.0 - tol));
  const auto hi0 = static_cast<index_t>(target0 * (1.0 + tol)) + 1;
  const auto lo1 = static_cast<index_t>(target1 * (1.0 - tol));
  const auto hi1 = static_cast<index_t>(target1 * (1.0 + tol)) + 1;

  std::vector<bool> moved(static_cast<std::size_t>(g.num_vertices()), false);
  std::vector<bool> queued(static_cast<std::size_t>(g.num_vertices()), false);

  // Only boundary vertices (those with a neighbor on the other side) can
  // have positive gain, so the candidate list starts as the boundary and
  // grows with the neighborhoods of moved vertices. This keeps a pass at
  // O(moves * boundary * degree) instead of O(moves * |V|).
  std::vector<index_t> candidates;
  for (index_t v : verts) {
    const index_t mine = b.side[static_cast<std::size_t>(v)];
    for (index_t u : g.neighbors(v)) {
      const index_t s = b.side[static_cast<std::size_t>(u)];
      if (s >= 0 && s != mine) {
        candidates.push_back(v);
        queued[static_cast<std::size_t>(v)] = true;
        break;
      }
    }
  }

  bool improved = false;
  while (true) {
    index_t best = -1;
    index_t best_gain = 0;
    for (index_t v : candidates) {
      if (moved[static_cast<std::size_t>(v)]) continue;
      const index_t mine = b.side[static_cast<std::size_t>(v)];
      // Balance feasibility of moving v away from `mine`.
      if (mine == 0) {
        if (b.size0 - 1 < lo0 || b.size1 + 1 > hi1) continue;
      } else {
        if (b.size1 - 1 < lo1 || b.size0 + 1 > hi0) continue;
      }
      const index_t gain = move_gain(g, b, v);
      if (gain > best_gain || (gain == best_gain && gain > 0 && best < 0)) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0 || best_gain <= 0) break;
    const index_t mine = b.side[static_cast<std::size_t>(best)];
    b.side[static_cast<std::size_t>(best)] = 1 - mine;
    if (mine == 0) {
      --b.size0;
      ++b.size1;
    } else {
      ++b.size0;
      --b.size1;
    }
    moved[static_cast<std::size_t>(best)] = true;
    improved = true;
    for (index_t u : g.neighbors(best)) {
      if (b.side[static_cast<std::size_t>(u)] >= 0 &&
          !queued[static_cast<std::size_t>(u)]) {
        candidates.push_back(u);
        queued[static_cast<std::size_t>(u)] = true;
      }
    }
  }
  return improved;
}

void bisect_recursive(const Graph& g, std::vector<index_t>& verts,
                      index_t first_part, index_t nparts,
                      const PartitionOptions& opts, Rng& rng,
                      std::vector<index_t>& part_out) {
  if (nparts == 1) {
    for (index_t v : verts) {
      part_out[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  const index_t nparts0 = nparts / 2;
  const index_t nparts1 = nparts - nparts0;
  const auto n_sub = static_cast<index_t>(verts.size());
  const auto target0 = static_cast<index_t>(
      static_cast<std::int64_t>(n_sub) * nparts0 / nparts);

  Bisection b = grow_bisection(g, verts, target0, rng);
  for (int pass = 0; pass < opts.refinement_passes; ++pass) {
    if (!refine_pass(g, verts, b, target0, opts.balance_tolerance)) break;
  }

  std::vector<index_t> verts0;
  std::vector<index_t> verts1;
  verts0.reserve(static_cast<std::size_t>(b.size0));
  verts1.reserve(static_cast<std::size_t>(b.size1));
  for (index_t v : verts) {
    (b.side[static_cast<std::size_t>(v)] == 0 ? verts0 : verts1).push_back(v);
  }
  verts.clear();
  verts.shrink_to_fit();
  bisect_recursive(g, verts0, first_part, nparts0, opts, rng, part_out);
  bisect_recursive(g, verts1, first_part + nparts0, nparts1, opts, rng, part_out);
}

}  // namespace

std::vector<index_t> partition_graph(const Graph& g, index_t nparts,
                                     const PartitionOptions& opts) {
  FSAIC_REQUIRE(nparts >= 1, "nparts must be positive");
  FSAIC_REQUIRE(nparts <= g.num_vertices() || g.num_vertices() == 0,
                "more parts than vertices");
  std::vector<index_t> part(static_cast<std::size_t>(g.num_vertices()), 0);
  if (nparts == 1 || g.num_vertices() == 0) return part;
  std::vector<index_t> verts(static_cast<std::size_t>(g.num_vertices()));
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    verts[static_cast<std::size_t>(v)] = v;
  }
  Rng rng(opts.seed);
  bisect_recursive(g, verts, 0, nparts, opts, rng, part);
  return part;
}

PartitionMetrics evaluate_partition(const Graph& g, std::span<const index_t> part,
                                    index_t nparts) {
  FSAIC_REQUIRE(part.size() == static_cast<std::size_t>(g.num_vertices()),
                "partition size mismatch");
  PartitionMetrics m;
  m.part_sizes = partition_sizes(part, nparts);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    for (index_t u : g.neighbors(v)) {
      if (u > v && part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)]) {
        ++m.edge_cut;
      }
    }
  }
  const double avg =
      static_cast<double>(g.num_vertices()) / static_cast<double>(nparts);
  index_t maxsize = 0;
  for (index_t s : m.part_sizes) {
    maxsize = std::max(maxsize, s);
  }
  m.imbalance = avg > 0 ? static_cast<double>(maxsize) / avg : 1.0;
  return m;
}

std::vector<index_t> partition_permutation(std::span<const index_t> part,
                                           index_t nparts) {
  const auto sizes = partition_sizes(part, nparts);
  std::vector<index_t> start(static_cast<std::size_t>(nparts) + 1, 0);
  for (index_t p = 0; p < nparts; ++p) {
    start[static_cast<std::size_t>(p) + 1] =
        start[static_cast<std::size_t>(p)] + sizes[static_cast<std::size_t>(p)];
  }
  std::vector<index_t> perm(part.size());
  std::vector<index_t> cursor(start.begin(), start.end() - 1);
  for (std::size_t v = 0; v < part.size(); ++v) {
    perm[v] = cursor[static_cast<std::size_t>(part[v])]++;
  }
  return perm;
}

std::vector<index_t> partition_sizes(std::span<const index_t> part, index_t nparts) {
  std::vector<index_t> sizes(static_cast<std::size_t>(nparts), 0);
  for (index_t p : part) {
    FSAIC_REQUIRE(p >= 0 && p < nparts, "part id out of range");
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

}  // namespace fsaic
