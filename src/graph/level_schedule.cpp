#include "graph/level_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fsaic {

LevelSchedule level_schedule(const CsrMatrix& l) {
  FSAIC_REQUIRE(l.rows() == l.cols(), "triangular factor must be square");
  FSAIC_REQUIRE(l.pattern().is_lower_triangular(),
                "level schedule expects a lower-triangular factor");
  const index_t n = l.rows();
  LevelSchedule s;
  s.level_of.assign(static_cast<std::size_t>(n), 0);
  index_t max_level = -1;
  for (index_t i = 0; i < n; ++i) {
    index_t level = 0;
    for (index_t j : l.row_cols(i)) {
      if (j < i) {
        level = std::max(level, s.level_of[static_cast<std::size_t>(j)] + 1);
      }
    }
    s.level_of[static_cast<std::size_t>(i)] = level;
    max_level = std::max(max_level, level);
  }
  s.levels.resize(static_cast<std::size_t>(max_level) + 1);
  for (index_t i = 0; i < n; ++i) {
    s.levels[static_cast<std::size_t>(s.level_of[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
  return s;
}

double level_scheduled_speedup(const LevelSchedule& schedule, int threads) {
  FSAIC_REQUIRE(threads >= 1, "threads must be positive");
  if (schedule.level_of.empty()) return 1.0;
  double parallel_quanta = 0.0;
  for (const auto& level : schedule.levels) {
    parallel_quanta += std::ceil(static_cast<double>(level.size()) /
                                 static_cast<double>(threads));
  }
  return static_cast<double>(schedule.level_of.size()) / parallel_quanta;
}

}  // namespace fsaic
