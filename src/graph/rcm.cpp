#include "graph/rcm.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace fsaic {

std::vector<index_t> rcm_permutation(const Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;  // order[k] = k-th visited vertex
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> neighbors_by_degree;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Start each component at a pseudo-peripheral vertex so level sets are
    // long and thin (small bandwidth).
    const index_t start = g.pseudo_peripheral(seed);
    std::deque<index_t> queue{start};
    visited[static_cast<std::size_t>(start)] = true;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      neighbors_by_degree.clear();
      for (index_t u : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          neighbors_by_degree.push_back(u);
        }
      }
      std::sort(neighbors_by_degree.begin(), neighbors_by_degree.end(),
                [&](index_t a, index_t b) {
                  const index_t da = g.degree(a);
                  const index_t db = g.degree(b);
                  return da != db ? da < db : a < b;
                });
      for (index_t u : neighbors_by_degree) {
        queue.push_back(u);
      }
    }
  }
  FSAIC_CHECK(order.size() == static_cast<std::size_t>(n),
              "RCM must visit every vertex");

  // Reverse, then invert into perm[old] = new.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        n - 1 - k;
  }
  return perm;
}

index_t pattern_bandwidth(const SparsityPattern& p) {
  index_t bw = 0;
  for (index_t i = 0; i < p.rows(); ++i) {
    for (index_t j : p.row(i)) {
      bw = std::max(bw, std::abs(i - j));
    }
  }
  return bw;
}

offset_t pattern_profile(const SparsityPattern& p) {
  offset_t profile = 0;
  for (index_t i = 0; i < p.rows(); ++i) {
    const auto row = p.row(i);
    if (!row.empty() && row.front() < i) {
      profile += i - row.front();
    }
  }
  return profile;
}

}  // namespace fsaic
