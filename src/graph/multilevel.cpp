#include "graph/multilevel.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fsaic {

namespace {

/// Weighted graph used on the coarse levels: vertex weights count collapsed
/// fine vertices, edge weights count collapsed fine edges.
struct WGraph {
  index_t n = 0;
  std::vector<offset_t> xadj;
  std::vector<index_t> adj;
  std::vector<index_t> ewgt;
  std::vector<index_t> vwgt;

  [[nodiscard]] index_t total_weight() const {
    return std::accumulate(vwgt.begin(), vwgt.end(), index_t{0});
  }
};

/// Induced weighted graph of `verts` within `g` (unit weights);
/// local_of maps global vertex ids to [0, |verts|).
WGraph induced_graph(const Graph& g, std::span<const index_t> verts,
                     std::vector<index_t>& local_of) {
  WGraph w;
  w.n = static_cast<index_t>(verts.size());
  for (std::size_t k = 0; k < verts.size(); ++k) {
    local_of[static_cast<std::size_t>(verts[k])] = static_cast<index_t>(k);
  }
  w.xadj.assign(static_cast<std::size_t>(w.n) + 1, 0);
  for (std::size_t k = 0; k < verts.size(); ++k) {
    index_t deg = 0;
    for (index_t u : g.neighbors(verts[k])) {
      if (local_of[static_cast<std::size_t>(u)] >= 0) ++deg;
    }
    w.xadj[k + 1] = w.xadj[k] + deg;
  }
  w.adj.resize(static_cast<std::size_t>(w.xadj.back()));
  w.ewgt.assign(w.adj.size(), 1);
  w.vwgt.assign(static_cast<std::size_t>(w.n), 1);
  std::size_t pos = 0;
  for (std::size_t k = 0; k < verts.size(); ++k) {
    for (index_t u : g.neighbors(verts[k])) {
      const index_t lu = local_of[static_cast<std::size_t>(u)];
      if (lu >= 0) w.adj[pos++] = lu;
    }
  }
  return w;
}

/// Heavy-edge matching coarsening. Returns the coarse graph and fills
/// coarse_of[v] for every fine vertex.
WGraph coarsen(const WGraph& fine, Rng& rng, std::vector<index_t>& coarse_of) {
  const index_t n = fine.n;
  coarse_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.next_index(i + 1))]);
  }

  index_t coarse_n = 0;
  for (index_t v : order) {
    if (coarse_of[static_cast<std::size_t>(v)] >= 0) continue;
    // Match with the unmatched neighbor of largest edge weight.
    index_t best = -1;
    index_t best_w = 0;
    for (offset_t e = fine.xadj[static_cast<std::size_t>(v)];
         e < fine.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const index_t u = fine.adj[static_cast<std::size_t>(e)];
      if (u != v && coarse_of[static_cast<std::size_t>(u)] < 0 &&
          fine.ewgt[static_cast<std::size_t>(e)] > best_w) {
        best_w = fine.ewgt[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    coarse_of[static_cast<std::size_t>(v)] = coarse_n;
    if (best >= 0) {
      coarse_of[static_cast<std::size_t>(best)] = coarse_n;
    }
    ++coarse_n;
  }

  // Aggregate edges of the coarse graph with a marker accumulator.
  WGraph coarse;
  coarse.n = coarse_n;
  coarse.vwgt.assign(static_cast<std::size_t>(coarse_n), 0);
  for (index_t v = 0; v < n; ++v) {
    coarse.vwgt[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])] +=
        fine.vwgt[static_cast<std::size_t>(v)];
  }
  std::vector<std::vector<std::pair<index_t, index_t>>> rows(
      static_cast<std::size_t>(coarse_n));
  std::vector<index_t> marker(static_cast<std::size_t>(coarse_n), -1);
  std::vector<index_t> slot(static_cast<std::size_t>(coarse_n), 0);
  for (index_t v = 0; v < n; ++v) {
    const index_t cv = coarse_of[static_cast<std::size_t>(v)];
    auto& row = rows[static_cast<std::size_t>(cv)];
    for (offset_t e = fine.xadj[static_cast<std::size_t>(v)];
         e < fine.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const index_t cu =
          coarse_of[static_cast<std::size_t>(fine.adj[static_cast<std::size_t>(e)])];
      if (cu == cv) continue;
      if (marker[static_cast<std::size_t>(cu)] != cv) {
        marker[static_cast<std::size_t>(cu)] = cv;
        slot[static_cast<std::size_t>(cu)] = static_cast<index_t>(row.size());
        row.emplace_back(cu, 0);
      }
      row[static_cast<std::size_t>(slot[static_cast<std::size_t>(cu)])].second +=
          fine.ewgt[static_cast<std::size_t>(e)];
    }
  }
  coarse.xadj.assign(static_cast<std::size_t>(coarse_n) + 1, 0);
  for (index_t c = 0; c < coarse_n; ++c) {
    coarse.xadj[static_cast<std::size_t>(c) + 1] =
        coarse.xadj[static_cast<std::size_t>(c)] +
        static_cast<offset_t>(rows[static_cast<std::size_t>(c)].size());
  }
  coarse.adj.resize(static_cast<std::size_t>(coarse.xadj.back()));
  coarse.ewgt.resize(coarse.adj.size());
  std::size_t pos = 0;
  for (index_t c = 0; c < coarse_n; ++c) {
    for (const auto& [u, wgt] : rows[static_cast<std::size_t>(c)]) {
      coarse.adj[pos] = u;
      coarse.ewgt[pos] = wgt;
      ++pos;
    }
  }
  return coarse;
}

/// Weighted gain of moving v across the bisection.
index_t move_gain(const WGraph& g, std::span<const index_t> side, index_t v) {
  const index_t mine = side[static_cast<std::size_t>(v)];
  index_t gain = 0;
  for (offset_t e = g.xadj[static_cast<std::size_t>(v)];
       e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
    const index_t u = g.adj[static_cast<std::size_t>(e)];
    const index_t w = g.ewgt[static_cast<std::size_t>(e)];
    gain += (side[static_cast<std::size_t>(u)] != mine) ? w : -w;
  }
  return gain;
}

/// Boundary FM sweep with vertex weights. Mutates side/weights in place.
bool refine(const WGraph& g, std::vector<index_t>& side, index_t& w0, index_t& w1,
            index_t target0, double tol) {
  const auto lo0 = static_cast<index_t>(target0 * (1.0 - tol));
  const auto total = w0 + w1;
  const auto hi0 = static_cast<index_t>(target0 * (1.0 + tol)) + 1;
  const index_t target1 = total - target0;
  const auto lo1 = static_cast<index_t>(target1 * (1.0 - tol));
  const auto hi1 = static_cast<index_t>(target1 * (1.0 + tol)) + 1;

  std::vector<bool> moved(static_cast<std::size_t>(g.n), false);
  std::vector<bool> queued(static_cast<std::size_t>(g.n), false);
  std::vector<index_t> candidates;
  for (index_t v = 0; v < g.n; ++v) {
    for (offset_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      if (side[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])] !=
          side[static_cast<std::size_t>(v)]) {
        candidates.push_back(v);
        queued[static_cast<std::size_t>(v)] = true;
        break;
      }
    }
  }

  bool improved = false;
  while (true) {
    index_t best = -1;
    index_t best_gain = 0;
    for (index_t v : candidates) {
      if (moved[static_cast<std::size_t>(v)]) continue;
      const index_t wv = g.vwgt[static_cast<std::size_t>(v)];
      if (side[static_cast<std::size_t>(v)] == 0) {
        if (w0 - wv < lo0 || w1 + wv > hi1) continue;
      } else {
        if (w1 - wv < lo1 || w0 + wv > hi0) continue;
      }
      const index_t gain = move_gain(g, side, v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0) break;
    const index_t wv = g.vwgt[static_cast<std::size_t>(best)];
    if (side[static_cast<std::size_t>(best)] == 0) {
      side[static_cast<std::size_t>(best)] = 1;
      w0 -= wv;
      w1 += wv;
    } else {
      side[static_cast<std::size_t>(best)] = 0;
      w1 -= wv;
      w0 += wv;
    }
    moved[static_cast<std::size_t>(best)] = true;
    improved = true;
    for (offset_t e = g.xadj[static_cast<std::size_t>(best)];
         e < g.xadj[static_cast<std::size_t>(best) + 1]; ++e) {
      const index_t u = g.adj[static_cast<std::size_t>(e)];
      if (!queued[static_cast<std::size_t>(u)]) {
        queued[static_cast<std::size_t>(u)] = true;
        candidates.push_back(u);
      }
    }
  }
  return improved;
}

/// Weighted BFS-growing bisection of a (small) graph.
void grow_bisection(const WGraph& g, index_t target0, Rng& rng,
                    std::vector<index_t>& side, index_t& w0, index_t& w1) {
  side.assign(static_cast<std::size_t>(g.n), 1);
  w0 = 0;
  w1 = g.total_weight();
  std::vector<bool> visited(static_cast<std::size_t>(g.n), false);
  while (w0 < target0) {
    index_t seed = -1;
    for (int t = 0; t < 4 && seed < 0; ++t) {
      const index_t cand = rng.next_index(g.n);
      if (!visited[static_cast<std::size_t>(cand)]) seed = cand;
    }
    for (index_t v = 0; seed < 0 && v < g.n; ++v) {
      if (!visited[static_cast<std::size_t>(v)]) seed = v;
    }
    FSAIC_CHECK(seed >= 0, "bisection ran out of seeds");
    std::deque<index_t> queue{seed};
    visited[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty() && w0 < target0) {
      const index_t v = queue.front();
      queue.pop_front();
      if (side[static_cast<std::size_t>(v)] == 1) {
        side[static_cast<std::size_t>(v)] = 0;
        w0 += g.vwgt[static_cast<std::size_t>(v)];
        w1 -= g.vwgt[static_cast<std::size_t>(v)];
      }
      for (offset_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const index_t u = g.adj[static_cast<std::size_t>(e)];
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          queue.push_back(u);
        }
      }
    }
  }
}

/// Multilevel bisection of a weighted graph: coarsen, split, project+refine.
std::vector<index_t> multilevel_bisect(WGraph graph, index_t target0, Rng& rng,
                                       const MultilevelOptions& opts) {
  // V-cycle bookkeeping: levels[k] is the graph at depth k, maps[k] sends
  // level-k vertices to level-(k+1) coarse vertices.
  std::vector<WGraph> levels;
  std::vector<std::vector<index_t>> maps;
  levels.push_back(std::move(graph));
  while (levels.back().n > opts.coarsest_vertices) {
    std::vector<index_t> coarse_of;
    WGraph coarse = coarsen(levels.back(), rng, coarse_of);
    if (static_cast<double>(coarse.n) >
        opts.min_shrink_factor * static_cast<double>(levels.back().n)) {
      break;  // matching stalled (e.g. star graphs); stop coarsening
    }
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // Initial split at the coarsest level.
  std::vector<index_t> side;
  index_t w0 = 0;
  index_t w1 = 0;
  grow_bisection(levels.back(), target0, rng, side, w0, w1);
  for (int pass = 0; pass < opts.refinement_passes; ++pass) {
    if (!refine(levels.back(), side, w0, w1, target0, opts.balance_tolerance)) {
      break;
    }
  }

  // Uncoarsen: project and refine at every finer level.
  for (std::size_t k = maps.size(); k-- > 0;) {
    const auto& map = maps[k];
    std::vector<index_t> fine_side(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine_side[v] = side[static_cast<std::size_t>(map[v])];
    }
    side = std::move(fine_side);
    w0 = 0;
    for (index_t v = 0; v < levels[k].n; ++v) {
      if (side[static_cast<std::size_t>(v)] == 0) {
        w0 += levels[k].vwgt[static_cast<std::size_t>(v)];
      }
    }
    w1 = levels[k].total_weight() - w0;
    for (int pass = 0; pass < opts.refinement_passes; ++pass) {
      if (!refine(levels[k], side, w0, w1, target0, opts.balance_tolerance)) {
        break;
      }
    }
  }
  return side;
}

void bisect_recursive(const Graph& g, std::vector<index_t>& verts,
                      index_t first_part, index_t nparts,
                      const MultilevelOptions& opts, Rng& rng,
                      std::vector<index_t>& local_of,
                      std::vector<index_t>& part_out) {
  if (nparts == 1) {
    for (index_t v : verts) {
      part_out[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  const index_t nparts0 = nparts / 2;
  const auto target0 = static_cast<index_t>(
      static_cast<std::int64_t>(verts.size()) * nparts0 / nparts);

  WGraph w = induced_graph(g, verts, local_of);
  const auto side = multilevel_bisect(std::move(w), target0, rng, opts);

  std::vector<index_t> verts0;
  std::vector<index_t> verts1;
  for (std::size_t k = 0; k < verts.size(); ++k) {
    (side[k] == 0 ? verts0 : verts1).push_back(verts[k]);
    local_of[static_cast<std::size_t>(verts[k])] = -1;  // reset for reuse
  }
  verts.clear();
  verts.shrink_to_fit();
  bisect_recursive(g, verts0, first_part, nparts0, opts, rng, local_of, part_out);
  bisect_recursive(g, verts1, first_part + nparts0, nparts - nparts0, opts, rng,
                   local_of, part_out);
}

}  // namespace

std::vector<index_t> partition_graph_multilevel(const Graph& g, index_t nparts,
                                                const MultilevelOptions& options) {
  FSAIC_REQUIRE(nparts >= 1, "nparts must be positive");
  FSAIC_REQUIRE(nparts <= g.num_vertices() || g.num_vertices() == 0,
                "more parts than vertices");
  std::vector<index_t> part(static_cast<std::size_t>(g.num_vertices()), 0);
  if (nparts == 1 || g.num_vertices() == 0) return part;
  std::vector<index_t> verts(static_cast<std::size_t>(g.num_vertices()));
  std::iota(verts.begin(), verts.end(), 0);
  std::vector<index_t> local_of(static_cast<std::size_t>(g.num_vertices()), -1);
  Rng rng(options.seed);
  bisect_recursive(g, verts, 0, nparts, options, rng, local_of, part);
  return part;
}

}  // namespace fsaic
