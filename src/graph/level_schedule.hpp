// Level scheduling of sparse triangular solves.
//
// The forward solve L y = b can only compute row i after every row j < i
// with l_ij != 0; the dependency DAG's level sets are the batches that can
// run in parallel. The number of levels is the critical path — for the
// IC(0) factors of mesh matrices it grows like the mesh diameter, which is
// precisely why implicit preconditioners scale poorly and why the paper's
// SAI family applies as SpMVs instead. This module computes the schedule
// and its parallelism profile, used by the motivation bench to put a number
// on "triangular solves are sequential".
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace fsaic {

struct LevelSchedule {
  /// level_of[i] = dependency depth of row i (0 = no prerequisites).
  std::vector<index_t> level_of;
  /// Rows grouped by level, ascending.
  std::vector<std::vector<index_t>> levels;

  [[nodiscard]] index_t depth() const {
    return static_cast<index_t>(levels.size());
  }

  /// Average rows runnable in parallel per level.
  [[nodiscard]] double average_parallelism() const {
    return levels.empty() ? 0.0
                          : static_cast<double>(level_of.size()) /
                                static_cast<double>(levels.size());
  }
};

/// Schedule the forward solve of lower-triangular `l` (diagonal present).
[[nodiscard]] LevelSchedule level_schedule(const CsrMatrix& l);

/// Modeled parallel speedup of a level-scheduled solve on `threads` cores:
/// sum over levels of ceil(rows / threads) work quanta versus the serial
/// row count. (Ignores per-level synchronization, so it is an upper bound.)
[[nodiscard]] double level_scheduled_speedup(const LevelSchedule& schedule,
                                             int threads);

}  // namespace fsaic
