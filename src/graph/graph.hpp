// Undirected adjacency graph of a sparse matrix, the input to the
// partitioner. The paper partitions the adjacency graph of the system matrix
// with METIS; graph/partition.hpp is this repo's from-scratch equivalent.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/pattern.hpp"

namespace fsaic {

/// CSR adjacency structure: symmetric, no self-loops.
class Graph {
 public:
  Graph() = default;

  /// Build from a matrix pattern: edge {i, j} for every off-diagonal entry
  /// (i, j) or (j, i). The result is symmetrized.
  static Graph from_pattern(const SparsityPattern& p);

  [[nodiscard]] index_t num_vertices() const { return n_; }
  [[nodiscard]] offset_t num_edges() const { return static_cast<offset_t>(adj_.size()) / 2; }

  [[nodiscard]] std::span<const index_t> neighbors(index_t v) const {
    return {adj_.data() + xadj_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1] -
                                     xadj_[static_cast<std::size_t>(v)])};
  }

  [[nodiscard]] index_t degree(index_t v) const {
    return static_cast<index_t>(xadj_[static_cast<std::size_t>(v) + 1] -
                                xadj_[static_cast<std::size_t>(v)]);
  }

  /// BFS distances from a seed, restricted to vertices where mask[v] == part
  /// (mask may be empty to search the whole graph). Unreached => -1.
  [[nodiscard]] std::vector<index_t> bfs_levels(index_t seed,
                                                std::span<const index_t> mask = {},
                                                index_t part = 0) const;

  /// A vertex approximately maximizing eccentricity within its component
  /// (two BFS sweeps from `seed`): the classic pseudo-peripheral heuristic
  /// used to start level-set bisection.
  [[nodiscard]] index_t pseudo_peripheral(index_t seed,
                                          std::span<const index_t> mask = {},
                                          index_t part = 0) const;

  /// Number of connected components.
  [[nodiscard]] index_t component_count() const;

 private:
  index_t n_ = 0;
  std::vector<offset_t> xadj_;
  std::vector<index_t> adj_;
};

}  // namespace fsaic
