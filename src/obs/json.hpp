// Minimal JSON value tree with a writer and a strict recursive-descent
// parser. This is the serialization substrate of the observability layer:
// the trace recorder, the metrics registry and the JSONL run reports all
// emit through it, and the tests parse their own output back to prove the
// files are loadable (chrome://tracing, jq, pandas.read_json(lines=True)).
//
// Integers are kept separate from doubles so byte counters round-trip
// exactly — the bench reports *prove* communication neutrality by comparing
// counters, which %.17g doubles above 2^53 could silently break.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fsaic {

class JsonValue {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T i) : type_(Type::Int), int_(static_cast<std::int64_t>(i)) {}
  JsonValue(double d) : type_(Type::Double), double_(d) {}
  JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}
  JsonValue(Array a) : type_(Type::Array), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::Object), object_(std::move(o)) {}

  [[nodiscard]] static JsonValue object() { return JsonValue(Object{}); }
  [[nodiscard]] static JsonValue array() { return JsonValue(Array{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::Int; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Checked accessors; throw fsaic::Error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Ints promote to double here.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object access. operator[] inserts (null-coerces a fresh value into an
  /// object); `find` returns nullptr when absent; `at` throws.
  JsonValue& operator[](const std::string& key);
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Array append (coerces a null value into an array).
  void push_back(JsonValue v);

  [[nodiscard]] std::size_t size() const;

  /// Compact single-line rendering (no insignificant whitespace), suitable
  /// for JSONL.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete JSON document (trailing whitespace allowed,
  /// anything else throws fsaic::Error).
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape a string for embedding inside a JSON string literal (no quotes
/// added); shared with the handwritten trace writer.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace fsaic
