#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/json.hpp"

namespace fsaic {

std::uint32_t TraceRecorder::current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

namespace {

// Process-wide tid -> label registry shared by all recorders; threads are
// few and labels are written once, so a mutexed map is plenty.
std::mutex& label_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::uint32_t, std::string>& thread_labels() {
  static std::map<std::uint32_t, std::string> labels;
  return labels;
}

}  // namespace

void TraceRecorder::label_current_thread(std::string label) {
  const std::uint32_t tid = current_tid();
  const std::lock_guard<std::mutex> lock(label_mutex());
  thread_labels()[tid] = std::move(label);
}

void TraceRecorder::push(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::begin(const char* name, const char* category) {
  push({name, category, 'B', now_us(), 0.0, 0.0, current_tid()});
}

void TraceRecorder::end(const char* name, const char* category) {
  push({name, category, 'E', now_us(), 0.0, 0.0, current_tid()});
}

void TraceRecorder::complete(const char* name, const char* category,
                             double ts_us, double dur_us, std::string args) {
  push({name, category, 'X', ts_us, dur_us, 0.0, current_tid(),
        std::move(args)});
}

void TraceRecorder::instant(const char* name, const char* category) {
  push({name, category, 'i', now_us(), 0.0, 0.0, current_tid()});
}

void TraceRecorder::counter(const char* name, double value) {
  push({name, "counter", 'C', now_us(), 0.0, value, current_tid()});
}

std::size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::write_json(std::ostream& out) const {
  const auto snapshot = events();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : snapshot) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\"" << e.phase
        << "\",\"pid\":0,\"tid\":" << e.tid
        << strformat(",\"ts\":%.3f", e.timestamp_us);
    if (e.phase == 'X') out << strformat(",\"dur\":%.3f", e.duration_us);
    if (e.phase == 'C') out << strformat(",\"args\":{\"value\":%.17g}", e.value);
    if (e.phase != 'C' && !e.args.empty()) out << ",\"args\":" << e.args;
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    out << "}";
  }
  // thread_name metadata for every labeled track that appears in the trace.
  {
    const std::lock_guard<std::mutex> lock(label_mutex());
    for (const auto& [tid, label] : thread_labels()) {
      bool seen = false;
      for (const auto& e : snapshot) {
        if (e.tid == tid) {
          seen = true;
          break;
        }
      }
      if (!seen) continue;
      if (!first) out << ",\n";
      first = false;
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
          << ",\"args\":{\"name\":\"" << json_escape(label) << "\"}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  FSAIC_REQUIRE(out.good(), "cannot open trace output file: " + path);
  write_json(out);
  FSAIC_REQUIRE(out.good(), "failed writing trace file: " + path);
}

}  // namespace fsaic
