#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace fsaic {

void HistogramData::observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  int b = 0;
  if (value >= 1.0) {
    b = std::min(kBuckets - 1, 1 + std::ilogb(value));
  }
  ++buckets[static_cast<std::size_t>(b)];
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  const auto target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count))));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (seen + in_bucket < target) {
      seen += in_bucket;
      continue;
    }
    // The t-th smallest observation falls in this bucket [L, U). Interpolate
    // linearly by its rank among the bucket's n_b observations (assumed
    // evenly spread), then clamp to the observed extrema — see the rule
    // documented on the declaration.
    const double lower = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    const double upper = b == 0 ? 1.0 : std::ldexp(1.0, b);
    const double frac = static_cast<double>(target - seen) /
                        static_cast<double>(in_bucket);
    return std::clamp(lower + frac * (upper - lower), min, max);
  }
  return max;
}

JsonValue HistogramData::to_json() const {
  JsonValue out = JsonValue::object();
  out["count"] = count;
  out["sum"] = sum;
  out["min"] = min;
  out["max"] = max;
  out["mean"] = mean();
  out["p50"] = quantile(0.50);
  out["p95"] = quantile(0.95);
  out["p99"] = quantile(0.99);
  return out;
}

std::string MetricsRegistry::key(std::string_view name, rank_t rank) {
  std::string k(name);
  if (rank != kGlobal) {
    k += ".rank";
    k += std::to_string(rank);
  }
  return k;
}

void MetricsRegistry::add(std::string_view name, std::int64_t delta,
                          rank_t rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[key(name, rank)] += delta;
}

void MetricsRegistry::set(std::string_view name, double value, rank_t rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[key(name, rank)] = value;
}

std::int64_t MetricsRegistry::counter(std::string_view name, rank_t rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(key(name, rank));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name, rank_t rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(key(name, rank));
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::observe(std::string_view name, double value,
                              rank_t rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histograms_[key(name, rank)].observe(value);
}

HistogramData MetricsRegistry::histogram(std::string_view name,
                                         rank_t rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(key(name, rank));
  return it == histograms_.end() ? HistogramData{} : it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {counters_, gauges_, histograms_};
}

JsonValue MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [k, v] : snap.counters) counters[k] = v;
  JsonValue gauges = JsonValue::object();
  for (const auto& [k, v] : snap.gauges) gauges[k] = v;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  if (!snap.histograms.empty()) {
    JsonValue hists = JsonValue::object();
    for (const auto& [k, v] : snap.histograms) hists[k] = v.to_json();
    out["histograms"] = std::move(hists);
  }
  return out;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void record_comm_stats(MetricsRegistry& metrics, std::string_view prefix,
                       const CommStats& stats) {
  const std::string p(prefix);
  metrics.add(p + ".halo_messages", stats.halo_messages);
  metrics.add(p + ".halo_bytes", stats.halo_bytes);
  metrics.add(p + ".allreduce_count", stats.allreduce_count);
  metrics.add(p + ".allreduce_bytes", stats.allreduce_bytes);
  for (const auto& [pair, bytes] : stats.pair_bytes) {
    metrics.add(p + ".halo_bytes_sent", bytes, pair.first);
  }
}

}  // namespace fsaic
