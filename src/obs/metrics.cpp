#include "obs/metrics.hpp"

namespace fsaic {

std::string MetricsRegistry::key(std::string_view name, rank_t rank) {
  std::string k(name);
  if (rank != kGlobal) {
    k += ".rank";
    k += std::to_string(rank);
  }
  return k;
}

void MetricsRegistry::add(std::string_view name, std::int64_t delta,
                          rank_t rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[key(name, rank)] += delta;
}

void MetricsRegistry::set(std::string_view name, double value, rank_t rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[key(name, rank)] = value;
}

std::int64_t MetricsRegistry::counter(std::string_view name, rank_t rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(key(name, rank));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name, rank_t rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(key(name, rank));
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {counters_, gauges_};
}

JsonValue MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  JsonValue out = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [k, v] : snap.counters) counters[k] = v;
  JsonValue gauges = JsonValue::object();
  for (const auto& [k, v] : snap.gauges) gauges[k] = v;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  return out;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
}

void record_comm_stats(MetricsRegistry& metrics, std::string_view prefix,
                       const CommStats& stats) {
  const std::string p(prefix);
  metrics.add(p + ".halo_messages", stats.halo_messages);
  metrics.add(p + ".halo_bytes", stats.halo_bytes);
  metrics.add(p + ".allreduce_count", stats.allreduce_count);
  metrics.add(p + ".allreduce_bytes", stats.allreduce_bytes);
  for (const auto& [pair, bytes] : stats.pair_bytes) {
    metrics.add(p + ".halo_bytes_sent", bytes, pair.first);
  }
}

}  // namespace fsaic
