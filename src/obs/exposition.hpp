// Prometheus text exposition of a MetricsRegistry snapshot.
//
// A long-lived `fsaic serve` should be inspectable without killing it, and
// the lingua franca for that is the Prometheus text format (version 0.0.4):
// one `# TYPE` header per metric family, one sample line per series. This
// module renders a registry snapshot into that format:
//
//   - counters  -> `fsaic_<name> <value>` with TYPE `counter`
//   - gauges    -> TYPE `gauge`
//   - histograms-> TYPE `histogram`: cumulative `_bucket{le="…"}` lines over
//                  the registry's log2 bucket edges (up to the last occupied
//                  bucket, then `le="+Inf"`), plus `_sum` and `_count`
//
// Registry keys are sanitized into valid metric names (every character
// outside [a-zA-Z0-9_:] becomes '_', so "service.queue_us" renders as
// fsaic_service_queue_us), and the per-rank dimension "name.rank<p>" becomes
// a `rank="<p>"` label. Counter values are emitted as integers so byte
// counters round-trip exactly.
//
// `atomic_write_file` is the snapshot publication primitive: temp file in
// the target directory + rename, so a scraper (or a human with `cat`) never
// observes a half-written exposition.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace fsaic {

/// Sanitized Prometheus metric name: "<prefix>_<name>" with every character
/// outside [a-zA-Z0-9_:] replaced by '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          std::string_view prefix = "fsaic");

/// Render a snapshot in the Prometheus text exposition format. Families are
/// emitted in sorted order (counters, then gauges, then histograms), each
/// with its `# TYPE` header once; per-rank series carry a rank label.
[[nodiscard]] std::string render_prometheus(
    const MetricsRegistry::Snapshot& snapshot,
    std::string_view prefix = "fsaic");

/// Convenience: snapshot + render in one call.
[[nodiscard]] std::string render_prometheus(const MetricsRegistry& metrics,
                                            std::string_view prefix = "fsaic");

/// Replace `path` atomically: write `content` to a temp file in the same
/// directory, then rename over `path`. Readers see either the old or the
/// new snapshot, never a torn one. Throws fsaic::Error on I/O failure.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace fsaic
