// Leveled, thread-safe structured logging: one compact JSON object per line.
//
// The serving path needed a third observability surface next to traces and
// metrics: a stream of *events* that names what happened to which request.
// Every line is `{"ts_us":…,"level":…,"event":…,<fields>}` — JSONL that jq,
// grep and pandas consume directly, and the same JsonValue substrate the
// rest of src/obs/ emits through. The solve service logs each request's
// lifecycle (admit → dequeue → setup → solve → respond) keyed by the
// request id `rid` it mints at admission; the same rid rides in the
// response JSON and in the trace slices' args, so one `grep '"rid":42'`
// correlates a slow request's log lines, metrics and trace spans.
//
// Like the rest of the layer, logging is off unless wired: a
// default-constructed Logger is disabled, `enabled()` is a cheap filter for
// callers that would otherwise build field objects, and a null Logger*
// costs one pointer test. `fsaic serve --log/--log-level` (or the
// FSAIC_LOG / FSAIC_LOG_LEVEL environment variables) configure the CLI.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace fsaic {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// "debug"|"info"|"warn"|"error"|"off" -> LogLevel; throws fsaic::Error on
/// anything else.
[[nodiscard]] LogLevel log_level_from_string(std::string_view s);
[[nodiscard]] const char* log_level_name(LogLevel level);

class Logger {
 public:
  /// Disabled logger: enabled() is false everywhere, log() is a no-op.
  Logger() = default;

  /// Log to `path` (truncates; throws fsaic::Error if uncreatable). "-" and
  /// "stderr" mean stderr.
  Logger(const std::string& path, LogLevel min_level);

  /// Log to a borrowed stream (tests); the caller keeps it alive.
  Logger(std::ostream& out, LogLevel min_level);

  /// Cheap level filter; guard expensive field construction with this.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return out_ != nullptr && level >= min_level_;
  }

  /// Append one line and flush. `fields` must be a JSON object (or null for
  /// none); its members follow the ts_us/level/event header. Thread-safe;
  /// below the minimum level the call is a no-op.
  void log(LogLevel level, std::string_view event,
           const JsonValue& fields = JsonValue());

  void debug(std::string_view event, const JsonValue& fields = JsonValue()) {
    log(LogLevel::Debug, event, fields);
  }
  void info(std::string_view event, const JsonValue& fields = JsonValue()) {
    log(LogLevel::Info, event, fields);
  }
  void warn(std::string_view event, const JsonValue& fields = JsonValue()) {
    log(LogLevel::Warn, event, fields);
  }
  void error(std::string_view event, const JsonValue& fields = JsonValue()) {
    log(LogLevel::Error, event, fields);
  }

  [[nodiscard]] std::int64_t lines_written() const;

  /// Logger configured from the environment: FSAIC_LOG names the sink
  /// (unset/empty -> disabled logger), FSAIC_LOG_LEVEL the minimum level
  /// (default "info").
  [[nodiscard]] static std::unique_ptr<Logger> from_env();

 private:
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  LogLevel min_level_ = LogLevel::Off;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  std::int64_t lines_ = 0;
};

}  // namespace fsaic
