#include "obs/report.hpp"

#include <istream>

#include "common/error.hpp"

namespace fsaic {

RunReportWriter::RunReportWriter(const std::string& path)
    : owned_(path), out_(&owned_) {
  FSAIC_REQUIRE(owned_.good(), "cannot open report output file: " + path);
}

RunReportWriter::RunReportWriter(std::ostream& out) : out_(&out) {}

void RunReportWriter::write(const JsonValue& record) {
  const std::string line = record.dump();
  const std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line << '\n';
  out_->flush();
  ++count_;
}

std::vector<JsonValue> read_jsonl(std::istream& in) {
  std::vector<JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    records.push_back(JsonValue::parse(line));
  }
  return records;
}

std::vector<JsonValue> read_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  FSAIC_REQUIRE(in.good(), "cannot open report file: " + path);
  return read_jsonl(in);
}

JsonValue comm_stats_to_json(const CommStats& stats) {
  JsonValue out = JsonValue::object();
  out["halo_messages"] = stats.halo_messages;
  out["halo_bytes"] = stats.halo_bytes;
  out["halo_intra_messages"] = stats.halo_intra_messages;
  out["halo_intra_bytes"] = stats.halo_intra_bytes;
  out["halo_inter_messages"] = stats.halo_inter_messages;
  out["halo_inter_bytes"] = stats.halo_inter_bytes;
  out["allreduce_count"] = stats.allreduce_count;
  out["allreduce_bytes"] = stats.allreduce_bytes;
  out["async_allreduce_count"] = stats.async_allreduce_count;
  out["async_allreduce_bytes"] = stats.async_allreduce_bytes;
  out["neighbor_pairs"] = static_cast<std::int64_t>(stats.neighbor_pair_count());
  return out;
}

}  // namespace fsaic
