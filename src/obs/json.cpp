#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace fsaic {

bool JsonValue::as_bool() const {
  FSAIC_REQUIRE(type_ == Type::Bool, "JSON value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  FSAIC_REQUIRE(type_ == Type::Int, "JSON value is not an integer");
  return int_;
}

double JsonValue::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  FSAIC_REQUIRE(type_ == Type::Double, "JSON value is not a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  FSAIC_REQUIRE(type_ == Type::String, "JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  FSAIC_REQUIRE(type_ == Type::Array, "JSON value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  FSAIC_REQUIRE(type_ == Type::Object, "JSON value is not an object");
  return object_;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  FSAIC_REQUIRE(type_ == Type::Object, "JSON value is not an object");
  return object_[key];
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  FSAIC_REQUIRE(v != nullptr, "JSON object has no key \"" + key + "\"");
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::Null) type_ = Type::Array;
  FSAIC_REQUIRE(type_ == Type::Array, "JSON value is not an array");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  return 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_to(const JsonValue& v, std::string& out);

void dump_double(double d, std::string& out) {
  // Non-finite numbers have no JSON spelling; null keeps the line parseable.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void dump_to(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::Int: out += std::to_string(v.as_int()); break;
    case JsonValue::Type::Double: dump_double(v.as_double(), out); break;
    case JsonValue::Type::String:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      break;
    case JsonValue::Type::Array: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(e, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_to(e, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    FSAIC_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP codepoint (surrogate pairs are not needed
          // by anything this library writes).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace fsaic
