// Per-iteration solver telemetry.
//
// The Krylov solvers call an IterationEmitter once per iteration; it fans the
// sample out to (a) the SolveResult residual history, (b) the user-attached
// TelemetrySink and (c) the trace recorder's residual counter track. This is
// the *single* per-iteration recording path: residual-history tracking is no
// longer a separate code path in each solver, and a sample carries the
// communication deltas so a sink can attribute halo/allreduce traffic to
// individual iterations (the data CommStats only exposes as end-of-run
// totals).
//
// Everything is inline and guarded by null checks, so a solve with no sink,
// no trace and no history tracking pays one pointer test per iteration.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dist/comm_stats.hpp"
#include "obs/trace.hpp"

namespace fsaic {

/// What the solver observed during one iteration.
struct IterationSample {
  int iteration = 0;               ///< 1-based iteration index
  double residual = 0.0;           ///< ||r_k||_2 (GMRES: the cheap estimate)
  double relative_residual = 0.0;  ///< residual / ||r_0||
  std::int64_t halo_bytes_delta = 0;     ///< halo bytes moved this iteration
  std::int64_t halo_messages_delta = 0;  ///< halo messages this iteration
  std::int64_t allreduce_delta = 0;      ///< allreduce calls this iteration
  double elapsed_us = 0.0;  ///< wall time since the previous sample
};

/// Receives one callback per solver iteration. Implementations must not
/// throw; the solver treats the sink as pure observation.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_iteration(const IterationSample& sample) = 0;
};

/// Sink that stores every sample (tests, report writers).
class CollectingSink final : public TelemetrySink {
 public:
  void on_iteration(const IterationSample& sample) override {
    samples_.push_back(sample);
  }
  [[nodiscard]] const std::vector<IterationSample>& samples() const {
    return samples_;
  }

 private:
  std::vector<IterationSample> samples_;
};

/// The solvers' shared emission helper. `history` is the SolveResult's
/// residual_history: the initial residual always lands there, per-iteration
/// values only when `track_history` is set. `comm` is read (never written)
/// to derive per-iteration traffic deltas.
class IterationEmitter {
 public:
  IterationEmitter(TelemetrySink* sink, TraceRecorder* trace,
                   std::vector<value_t>& history, bool track_history,
                   const CommStats& comm)
      : sink_(sink), trace_(trace), history_(history), track_(track_history),
        comm_(comm) {}

  /// Call once, right after ||r_0|| is known (before any early return).
  void record_initial(value_t initial_residual) {
    initial_residual_ = initial_residual;
    history_.push_back(initial_residual);
    if (trace_ != nullptr) {
      trace_->counter("residual", static_cast<double>(initial_residual));
    }
    if (sink_ != nullptr) take_snapshot();
  }

  /// Call once per completed iteration, with the residual that the solver's
  /// convergence test uses. The number of calls must equal the final
  /// SolveResult::iterations.
  void record_iteration(int iteration, value_t residual) {
    if (track_) history_.push_back(residual);
    if (trace_ != nullptr) {
      trace_->counter("residual", static_cast<double>(residual));
    }
    if (sink_ != nullptr) {
      IterationSample s;
      s.iteration = iteration;
      s.residual = static_cast<double>(residual);
      s.relative_residual =
          initial_residual_ > 0.0
              ? static_cast<double>(residual / initial_residual_)
              : 0.0;
      s.halo_bytes_delta = comm_.halo_bytes - last_halo_bytes_;
      s.halo_messages_delta = comm_.halo_messages - last_halo_messages_;
      s.allreduce_delta = comm_.allreduce_count - last_allreduce_count_;
      const auto now = std::chrono::steady_clock::now();
      s.elapsed_us =
          std::chrono::duration<double, std::micro>(now - last_time_).count();
      sink_->on_iteration(s);
      take_snapshot();
    }
  }

 private:
  void take_snapshot() {
    last_halo_bytes_ = comm_.halo_bytes;
    last_halo_messages_ = comm_.halo_messages;
    last_allreduce_count_ = comm_.allreduce_count;
    last_time_ = std::chrono::steady_clock::now();
  }

  TelemetrySink* sink_;
  TraceRecorder* trace_;
  std::vector<value_t>& history_;
  bool track_;
  const CommStats& comm_;
  value_t initial_residual_ = 0.0;
  std::int64_t last_halo_bytes_ = 0;
  std::int64_t last_halo_messages_ = 0;
  std::int64_t last_allreduce_count_ = 0;
  std::chrono::steady_clock::time_point last_time_{};
};

}  // namespace fsaic
