// Scoped phase timing into Chrome trace_event JSON.
//
// A TraceRecorder collects timestamped begin/end ('B'/'E'), complete ('X')
// and counter ('C') events; write_json() emits the trace_event format that
// chrome://tracing and Perfetto load directly. Everything is keyed off a
// nullable TraceRecorder*: when no recorder is attached the ScopedPhase
// constructor/destructor inline to a pointer test, so instrumented code paths
// cost nothing in un-traced runs (the <2% overhead budget of the benches).
//
// Thread safety: all recording methods take an internal lock, and events
// carry a per-thread id so B/E nesting stays well-formed per track even when
// phases from several threads interleave.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace fsaic {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'B';          ///< 'B', 'E', 'X', 'i' or 'C'
  double timestamp_us = 0.0; ///< microseconds since the recorder's epoch
  double duration_us = 0.0;  ///< 'X' events only
  double value = 0.0;        ///< 'C' events only
  std::uint32_t tid = 0;
  /// Optional pre-rendered JSON object emitted as the event's "args" (e.g.
  /// {"rid":42} on the service's per-request slices); empty = no args.
  std::string args;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds elapsed since this recorder was constructed.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Open a duration slice ('B'); must be paired with end() of the same name
  /// on the same thread — ScopedPhase guarantees the pairing.
  void begin(const char* name, const char* category);
  void end(const char* name, const char* category);

  /// Record an already-measured slice ('X') at an explicit start time.
  /// `args` is an optional pre-rendered JSON object (use json_escape for
  /// string values) attached verbatim as the slice's args — the hook the
  /// solve service uses to tag its queue/setup/solve slices with the
  /// request id minted at admission.
  void complete(const char* name, const char* category, double ts_us,
                double dur_us, std::string args = {});

  /// Point-in-time marker ('i').
  void instant(const char* name, const char* category);

  /// Counter track sample ('C'), e.g. the residual per iteration.
  void counter(const char* name, double value);

  [[nodiscard]] std::size_t event_count() const;

  /// Snapshot of the events recorded so far.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Emit the full {"traceEvents": [...]} document.
  void write_json(std::ostream& out) const;

  /// write_json to `path`; throws fsaic::Error if the file cannot be opened.
  void write_file(const std::string& path) const;

  /// Name the calling thread's track in every trace written by this process
  /// (emitted as a trace_event "thread_name" metadata record). The SPMD
  /// worker threads register themselves so per-rank slices show up under
  /// "spmd worker N" instead of a bare numeric tid.
  static void label_current_thread(std::string label);

 private:
  void push(TraceEvent event);
  static std::uint32_t current_tid();

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII phase scope: begin() on construction, end() on destruction; a null
/// recorder makes both a no-op. The name must outlive the scope (use string
/// literals).
class ScopedPhase {
 public:
  ScopedPhase(TraceRecorder* recorder, const char* name,
              const char* category = "phase")
      : recorder_(recorder), name_(name), category_(category) {
    if (recorder_ != nullptr) recorder_->begin(name_, category_);
  }
  ~ScopedPhase() {
    if (recorder_ != nullptr) recorder_->end(name_, category_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
};

}  // namespace fsaic
