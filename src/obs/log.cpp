#include "obs/log.hpp"

#include <cstdlib>
#include <iostream>
#include <ostream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace fsaic {

LogLevel log_level_from_string(std::string_view s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  FSAIC_REQUIRE(s == "off", "unknown log level \"" + std::string(s) +
                                "\" (use debug|info|warn|error|off)");
  return LogLevel::Off;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "off";
}

Logger::Logger(const std::string& path, LogLevel min_level)
    : min_level_(min_level) {
  if (path == "-" || path == "stderr") {
    out_ = &std::cerr;
    return;
  }
  owned_.open(path);
  FSAIC_REQUIRE(owned_.good(), "cannot open log output file: " + path);
  out_ = &owned_;
}

Logger::Logger(std::ostream& out, LogLevel min_level)
    : out_(&out), min_level_(min_level) {}

void Logger::log(LogLevel level, std::string_view event,
                 const JsonValue& fields) {
  if (!enabled(level)) return;
  FSAIC_REQUIRE(fields.is_null() || fields.is_object(),
                "log fields must be a JSON object");
  const double ts_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - epoch_)
                           .count();
  // Hand-assembled so the ts_us/level/event header leads every line (the
  // JsonValue object writer sorts keys alphabetically).
  std::string line =
      strformat("{\"ts_us\":%.1f,\"level\":\"%s\",\"event\":\"%s\"", ts_us,
                log_level_name(level),
                json_escape(event).c_str());
  if (fields.is_object() && fields.size() > 0) {
    const std::string body = fields.dump();  // "{...}"
    line += ',';
    line.append(body, 1, body.size() - 1);
  } else {
    line += '}';
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
  ++lines_;
}

std::int64_t Logger::lines_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::unique_ptr<Logger> Logger::from_env() {
  const char* sink = std::getenv("FSAIC_LOG");
  if (sink == nullptr || *sink == '\0') return std::make_unique<Logger>();
  const char* level = std::getenv("FSAIC_LOG_LEVEL");
  return std::make_unique<Logger>(
      std::string(sink), level != nullptr && *level != '\0'
                             ? log_level_from_string(level)
                             : LogLevel::Info);
}

}  // namespace fsaic
