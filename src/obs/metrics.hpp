// Thread-safe registry of named counters, gauges and latency histograms
// with an optional per-rank dimension.
//
// Counters are monotonic int64 accumulators (bytes, messages, runs); gauges
// are last-written doubles (GFLOP/s, misses/nnz, imbalance); histograms are
// log2-bucketed distributions of observed values (the solve service feeds
// its per-request queue-wait/setup/solve latencies here). A metric can be
// recorded globally (rank = kGlobal) or per simulated rank — the flattened
// key "name.rank<p>" keeps snapshots and JSON exports flat and greppable.
// CommStats feeds in through record_comm_stats(); the experiment runner and
// `fsaic bench` export snapshots into the JSONL run reports.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "dist/comm_stats.hpp"
#include "obs/json.hpp"

namespace fsaic {

/// Log2-bucketed distribution: bucket i counts observations in
/// [2^(i-1), 2^i) (bucket 0 holds everything below 1.0). 64 buckets cover
/// the full double range that matters for latencies in microseconds.
struct HistogramData {
  static constexpr int kBuckets = 64;
  std::vector<std::int64_t> buckets = std::vector<std::int64_t>(kBuckets, 0);
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double value);
  [[nodiscard]] double mean() const { return count > 0 ? sum / count : 0.0; }
  /// Nearest-rank quantile estimate with within-bucket linear interpolation
  /// (q in [0, 1]). The rule, pinned by unit tests: the target rank is
  /// t = max(1, ceil(q * count)); inside the bucket [L, U) holding the t-th
  /// smallest observation (L = 0 and U = 1 for bucket 0), the estimate is
  /// L + (t - seen)/n_b * (U - L), where `seen` counts observations in
  /// earlier buckets and n_b those in this one — i.e. the n_b observations
  /// are assumed evenly spread over the bucket. The result is clamped to
  /// the observed [min, max], which makes the single-sample case exact and
  /// keeps every estimate inside the data range. Empty histogram: 0.
  [[nodiscard]] double quantile(double q) const;
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,
  ///  "p99":..}
  [[nodiscard]] JsonValue to_json() const;
};

class MetricsRegistry {
 public:
  /// Sentinel rank for the global (un-dimensioned) series of a metric.
  static constexpr rank_t kGlobal = -1;

  /// Accumulate into a counter.
  void add(std::string_view name, std::int64_t delta, rank_t rank = kGlobal);

  /// Overwrite a gauge.
  void set(std::string_view name, double value, rank_t rank = kGlobal);

  /// Current counter value (0 if never touched).
  [[nodiscard]] std::int64_t counter(std::string_view name,
                                     rank_t rank = kGlobal) const;

  /// Current gauge value (0.0 if never set).
  [[nodiscard]] double gauge(std::string_view name, rank_t rank = kGlobal) const;

  /// Record one observation into a histogram.
  void observe(std::string_view name, double value, rank_t rank = kGlobal);

  /// Copy of a histogram's current state (empty/default if never observed).
  [[nodiscard]] HistogramData histogram(std::string_view name,
                                        rank_t rank = kGlobal) const;

  struct Snapshot {
    std::map<std::string, std::int64_t> counters;  ///< by flattened key
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}} for the run reports.
  [[nodiscard]] JsonValue to_json() const;

  void clear();

  /// Flattened storage key: "name" or "name.rank<p>".
  [[nodiscard]] static std::string key(std::string_view name, rank_t rank);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

/// Fold a CommStats block into the registry under `prefix`: global counters
/// <prefix>.halo_messages / .halo_bytes / .allreduce_count / .allreduce_bytes
/// plus per-sender-rank <prefix>.halo_bytes_sent derived from pair_bytes.
void record_comm_stats(MetricsRegistry& metrics, std::string_view prefix,
                       const CommStats& stats);

}  // namespace fsaic
