// Thread-safe registry of named counters and gauges with an optional
// per-rank dimension.
//
// Counters are monotonic int64 accumulators (bytes, messages, runs); gauges
// are last-written doubles (GFLOP/s, misses/nnz, imbalance). A metric can be
// recorded globally (rank = kGlobal) or per simulated rank — the flattened
// key "name.rank<p>" keeps snapshots and JSON exports flat and greppable.
// CommStats feeds in through record_comm_stats(); the experiment runner and
// `fsaic bench` export snapshots into the JSONL run reports.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "dist/comm_stats.hpp"
#include "obs/json.hpp"

namespace fsaic {

class MetricsRegistry {
 public:
  /// Sentinel rank for the global (un-dimensioned) series of a metric.
  static constexpr rank_t kGlobal = -1;

  /// Accumulate into a counter.
  void add(std::string_view name, std::int64_t delta, rank_t rank = kGlobal);

  /// Overwrite a gauge.
  void set(std::string_view name, double value, rank_t rank = kGlobal);

  /// Current counter value (0 if never touched).
  [[nodiscard]] std::int64_t counter(std::string_view name,
                                     rank_t rank = kGlobal) const;

  /// Current gauge value (0.0 if never set).
  [[nodiscard]] double gauge(std::string_view name, rank_t rank = kGlobal) const;

  struct Snapshot {
    std::map<std::string, std::int64_t> counters;  ///< by flattened key
    std::map<std::string, double> gauges;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}} for the run reports.
  [[nodiscard]] JsonValue to_json() const;

  void clear();

  /// Flattened storage key: "name" or "name.rank<p>".
  [[nodiscard]] static std::string key(std::string_view name, rank_t rank);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// Fold a CommStats block into the registry under `prefix`: global counters
/// <prefix>.halo_messages / .halo_bytes / .allreduce_count / .allreduce_bytes
/// plus per-sender-rank <prefix>.halo_bytes_sent derived from pair_bytes.
void record_comm_stats(MetricsRegistry& metrics, std::string_view prefix,
                       const CommStats& stats);

}  // namespace fsaic
