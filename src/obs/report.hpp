// Machine-readable run reports: one compact JSON object per line (JSONL),
// the format pandas.read_json(lines=True) / jq -s consume directly. The
// experiment runner appends one record per (matrix, method) run; `fsaic
// solve --report` writes a run record followed by per-iteration records.
// read_jsonl() closes the loop so tests can prove the files round-trip.
#pragma once

#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "dist/comm_stats.hpp"
#include "obs/json.hpp"

namespace fsaic {

class RunReportWriter {
 public:
  /// Open (truncate) `path`; throws fsaic::Error if it cannot be created.
  explicit RunReportWriter(const std::string& path);

  /// Write to a borrowed stream (tests; the caller keeps it alive).
  explicit RunReportWriter(std::ostream& out);

  /// Append one record as a single line and flush, so reports of aborted
  /// runs stay readable up to the last completed record. Thread-safe.
  void write(const JsonValue& record);

  [[nodiscard]] int records_written() const { return count_; }

 private:
  std::ofstream owned_;
  std::ostream* out_;
  std::mutex mutex_;
  int count_ = 0;
};

/// Parse every non-empty line of a JSONL stream; throws on malformed lines.
[[nodiscard]] std::vector<JsonValue> read_jsonl(std::istream& in);
[[nodiscard]] std::vector<JsonValue> read_jsonl_file(const std::string& path);

/// Totals of a CommStats block: halo_messages, halo_bytes, allreduce_count,
/// allreduce_bytes, neighbor_pairs.
[[nodiscard]] JsonValue comm_stats_to_json(const CommStats& stats);

}  // namespace fsaic
