#include "obs/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"

namespace fsaic {

namespace {

/// A registry key decomposed into its metric family and optional rank
/// dimension ("name.rank<p>" -> {"name", "<p>"}).
struct SeriesKey {
  std::string base;
  std::string rank;  ///< empty for the global series
};

SeriesKey split_key(const std::string& key) {
  const auto pos = key.rfind(".rank");
  if (pos != std::string::npos && pos + 5 < key.size()) {
    bool digits = true;
    for (std::size_t i = pos + 5; i < key.size(); ++i) {
      digits = digits && std::isdigit(static_cast<unsigned char>(key[i])) != 0;
    }
    if (digits) return {key.substr(0, pos), key.substr(pos + 5)};
  }
  return {key, ""};
}

/// Sort the series of one family: the global series first, then ranks in
/// numeric order (the flat map would yield rank10 before rank2).
bool series_before(const SeriesKey& a, const SeriesKey& b) {
  if (a.rank.empty() != b.rank.empty()) return a.rank.empty();
  if (a.rank.size() != b.rank.size()) return a.rank.size() < b.rank.size();
  return a.rank < b.rank;
}

std::string label_block(const SeriesKey& key) {
  return key.rank.empty() ? "" : "{rank=\"" + key.rank + "\"}";
}

/// Upper edge of log2 bucket b, matching HistogramData::observe.
double bucket_edge(int b) { return b == 0 ? 1.0 : std::ldexp(1.0, b); }

std::string format_double(double v) {
  // %.17g round-trips; strip a trailing ".0000…" is not needed for
  // Prometheus, which accepts any float syntax.
  return strformat("%.17g", v);
}

template <typename Value>
using FamilyMap =
    std::map<std::string, std::vector<std::pair<SeriesKey, Value>>>;

template <typename Value>
FamilyMap<Value> group_families(const std::map<std::string, Value>& flat) {
  FamilyMap<Value> families;
  for (const auto& [key, value] : flat) {
    const SeriesKey s = split_key(key);
    families[s.base].emplace_back(s, value);
  }
  for (auto& [base, series] : families) {
    std::sort(series.begin(), series.end(),
              [](const auto& a, const auto& b) {
                return series_before(a.first, b.first);
              });
  }
  return families;
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out.push_back('_');
  out.append(name);
  for (char& c : out) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!valid) c = '_';
  }
  return out;
}

std::string render_prometheus(const MetricsRegistry::Snapshot& snapshot,
                              std::string_view prefix) {
  std::string out;

  for (const auto& [base, series] : group_families(snapshot.counters)) {
    const std::string name = prometheus_name(base, prefix);
    out += "# TYPE " + name + " counter\n";
    for (const auto& [key, value] : series) {
      out += name + label_block(key) + " " +
             std::to_string(value) + "\n";
    }
  }

  for (const auto& [base, series] : group_families(snapshot.gauges)) {
    const std::string name = prometheus_name(base, prefix);
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [key, value] : series) {
      out += name + label_block(key) + " " + format_double(value) + "\n";
    }
  }

  for (const auto& [base, series] : group_families(snapshot.histograms)) {
    const std::string name = prometheus_name(base, prefix);
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [key, hist] : series) {
      // Cumulative buckets up to the last occupied one, then +Inf. The le
      // label carries the exact log2 upper edge of HistogramData's buckets.
      int last = -1;
      for (int b = 0; b < HistogramData::kBuckets; ++b) {
        if (hist.buckets[static_cast<std::size_t>(b)] > 0) last = b;
      }
      const std::string rank_label =
          key.rank.empty() ? "" : "rank=\"" + key.rank + "\",";
      std::int64_t cumulative = 0;
      for (int b = 0; b <= last; ++b) {
        cumulative += hist.buckets[static_cast<std::size_t>(b)];
        out += name + "_bucket{" + rank_label + "le=\"" +
               format_double(bucket_edge(b)) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket{" + rank_label + "le=\"+Inf\"} " +
             std::to_string(hist.count) + "\n";
      out += name + "_sum" + label_block(key) + " " + format_double(hist.sum) +
             "\n";
      out += name + "_count" + label_block(key) + " " +
             std::to_string(hist.count) + "\n";
    }
  }

  return out;
}

std::string render_prometheus(const MetricsRegistry& metrics,
                              std::string_view prefix) {
  return render_prometheus(metrics.snapshot(), prefix);
}

void atomic_write_file(const std::string& path, std::string_view content) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  fs::path tmp(target);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FSAIC_REQUIRE(out.good(), "cannot open temp file: " + tmp.string());
    out << content;
    out.flush();
    FSAIC_REQUIRE(out.good(), "failed writing temp file: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  FSAIC_REQUIRE(!ec, "cannot replace " + path + ": " + ec.message());
}

}  // namespace fsaic
