# Empty compiler generated dependencies file for fsaic.
# This may be replaced when dependencies are built.
