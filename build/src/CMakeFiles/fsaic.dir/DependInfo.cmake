
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache_model.cpp" "src/CMakeFiles/fsaic.dir/cachesim/cache_model.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/cachesim/cache_model.cpp.o.d"
  "/root/repo/src/core/adaptive.cpp" "src/CMakeFiles/fsaic.dir/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/adaptive.cpp.o.d"
  "/root/repo/src/core/factor_io.cpp" "src/CMakeFiles/fsaic.dir/core/factor_io.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/factor_io.cpp.o.d"
  "/root/repo/src/core/filtering.cpp" "src/CMakeFiles/fsaic.dir/core/filtering.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/filtering.cpp.o.d"
  "/root/repo/src/core/fsai.cpp" "src/CMakeFiles/fsaic.dir/core/fsai.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/fsai.cpp.o.d"
  "/root/repo/src/core/fsai_driver.cpp" "src/CMakeFiles/fsaic.dir/core/fsai_driver.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/fsai_driver.cpp.o.d"
  "/root/repo/src/core/pattern_extend.cpp" "src/CMakeFiles/fsaic.dir/core/pattern_extend.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/pattern_extend.cpp.o.d"
  "/root/repo/src/core/spai.cpp" "src/CMakeFiles/fsaic.dir/core/spai.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/core/spai.cpp.o.d"
  "/root/repo/src/dense/dense_matrix.cpp" "src/CMakeFiles/fsaic.dir/dense/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/dense/dense_matrix.cpp.o.d"
  "/root/repo/src/dense/factorizations.cpp" "src/CMakeFiles/fsaic.dir/dense/factorizations.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/dense/factorizations.cpp.o.d"
  "/root/repo/src/dist/comm_scheme.cpp" "src/CMakeFiles/fsaic.dir/dist/comm_scheme.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/dist/comm_scheme.cpp.o.d"
  "/root/repo/src/dist/dist_csr.cpp" "src/CMakeFiles/fsaic.dir/dist/dist_csr.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/dist/dist_csr.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/fsaic.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/level_schedule.cpp" "src/CMakeFiles/fsaic.dir/graph/level_schedule.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/graph/level_schedule.cpp.o.d"
  "/root/repo/src/graph/multilevel.cpp" "src/CMakeFiles/fsaic.dir/graph/multilevel.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/graph/multilevel.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/fsaic.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/graph/partition.cpp.o.d"
  "/root/repo/src/graph/rcm.cpp" "src/CMakeFiles/fsaic.dir/graph/rcm.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/graph/rcm.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/fsaic.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/CMakeFiles/fsaic.dir/harness/table.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/harness/table.cpp.o.d"
  "/root/repo/src/matgen/generators.cpp" "src/CMakeFiles/fsaic.dir/matgen/generators.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/matgen/generators.cpp.o.d"
  "/root/repo/src/matgen/suite.cpp" "src/CMakeFiles/fsaic.dir/matgen/suite.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/matgen/suite.cpp.o.d"
  "/root/repo/src/perf/cost_model.cpp" "src/CMakeFiles/fsaic.dir/perf/cost_model.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/perf/cost_model.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/CMakeFiles/fsaic.dir/perf/machine.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/perf/machine.cpp.o.d"
  "/root/repo/src/perf/setup_cost.cpp" "src/CMakeFiles/fsaic.dir/perf/setup_cost.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/perf/setup_cost.cpp.o.d"
  "/root/repo/src/solver/chebyshev.cpp" "src/CMakeFiles/fsaic.dir/solver/chebyshev.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/chebyshev.cpp.o.d"
  "/root/repo/src/solver/gmres.cpp" "src/CMakeFiles/fsaic.dir/solver/gmres.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/gmres.cpp.o.d"
  "/root/repo/src/solver/ic0.cpp" "src/CMakeFiles/fsaic.dir/solver/ic0.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/ic0.cpp.o.d"
  "/root/repo/src/solver/pcg.cpp" "src/CMakeFiles/fsaic.dir/solver/pcg.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/pcg.cpp.o.d"
  "/root/repo/src/solver/pipelined_cg.cpp" "src/CMakeFiles/fsaic.dir/solver/pipelined_cg.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/pipelined_cg.cpp.o.d"
  "/root/repo/src/solver/preconditioner.cpp" "src/CMakeFiles/fsaic.dir/solver/preconditioner.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/preconditioner.cpp.o.d"
  "/root/repo/src/solver/schwarz.cpp" "src/CMakeFiles/fsaic.dir/solver/schwarz.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/solver/schwarz.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/fsaic.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/fsaic.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/CMakeFiles/fsaic.dir/sparse/mm_io.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/mm_io.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/CMakeFiles/fsaic.dir/sparse/ops.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/ops.cpp.o.d"
  "/root/repo/src/sparse/pattern.cpp" "src/CMakeFiles/fsaic.dir/sparse/pattern.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/pattern.cpp.o.d"
  "/root/repo/src/sparse/sell.cpp" "src/CMakeFiles/fsaic.dir/sparse/sell.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/sell.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/CMakeFiles/fsaic.dir/sparse/stats.cpp.o" "gcc" "src/CMakeFiles/fsaic.dir/sparse/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
