file(REMOVE_RECURSE
  "libfsaic.a"
)
