# Empty dependencies file for fsaic_cli.
# This may be replaced when dependencies are built.
