file(REMOVE_RECURSE
  "CMakeFiles/fsaic_cli.dir/fsaic.cpp.o"
  "CMakeFiles/fsaic_cli.dir/fsaic.cpp.o.d"
  "fsaic"
  "fsaic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsaic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
