# Empty compiler generated dependencies file for solver_pipelined_cg_test.
# This may be replaced when dependencies are built.
