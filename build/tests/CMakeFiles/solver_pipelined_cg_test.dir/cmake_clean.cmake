file(REMOVE_RECURSE
  "CMakeFiles/solver_pipelined_cg_test.dir/solver/pipelined_cg_test.cpp.o"
  "CMakeFiles/solver_pipelined_cg_test.dir/solver/pipelined_cg_test.cpp.o.d"
  "solver_pipelined_cg_test"
  "solver_pipelined_cg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_pipelined_cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
