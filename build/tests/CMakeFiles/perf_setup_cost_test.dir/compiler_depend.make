# Empty compiler generated dependencies file for perf_setup_cost_test.
# This may be replaced when dependencies are built.
