# Empty dependencies file for matgen_generators_test.
# This may be replaced when dependencies are built.
