file(REMOVE_RECURSE
  "CMakeFiles/matgen_generators_test.dir/matgen/generators_test.cpp.o"
  "CMakeFiles/matgen_generators_test.dir/matgen/generators_test.cpp.o.d"
  "matgen_generators_test"
  "matgen_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matgen_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
