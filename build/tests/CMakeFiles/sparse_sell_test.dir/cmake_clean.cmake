file(REMOVE_RECURSE
  "CMakeFiles/sparse_sell_test.dir/sparse/sell_test.cpp.o"
  "CMakeFiles/sparse_sell_test.dir/sparse/sell_test.cpp.o.d"
  "sparse_sell_test"
  "sparse_sell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_sell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
