# Empty dependencies file for graph_rcm_test.
# This may be replaced when dependencies are built.
