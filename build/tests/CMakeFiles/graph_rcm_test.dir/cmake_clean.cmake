file(REMOVE_RECURSE
  "CMakeFiles/graph_rcm_test.dir/graph/rcm_test.cpp.o"
  "CMakeFiles/graph_rcm_test.dir/graph/rcm_test.cpp.o.d"
  "graph_rcm_test"
  "graph_rcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_rcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
