# Empty compiler generated dependencies file for solver_chebyshev_test.
# This may be replaced when dependencies are built.
