file(REMOVE_RECURSE
  "CMakeFiles/solver_chebyshev_test.dir/solver/chebyshev_test.cpp.o"
  "CMakeFiles/solver_chebyshev_test.dir/solver/chebyshev_test.cpp.o.d"
  "solver_chebyshev_test"
  "solver_chebyshev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_chebyshev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
