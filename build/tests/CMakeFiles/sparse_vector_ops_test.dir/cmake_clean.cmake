file(REMOVE_RECURSE
  "CMakeFiles/sparse_vector_ops_test.dir/sparse/vector_ops_test.cpp.o"
  "CMakeFiles/sparse_vector_ops_test.dir/sparse/vector_ops_test.cpp.o.d"
  "sparse_vector_ops_test"
  "sparse_vector_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_vector_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
