file(REMOVE_RECURSE
  "CMakeFiles/sparse_stats_test.dir/sparse/stats_test.cpp.o"
  "CMakeFiles/sparse_stats_test.dir/sparse/stats_test.cpp.o.d"
  "sparse_stats_test"
  "sparse_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
