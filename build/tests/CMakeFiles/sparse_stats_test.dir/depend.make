# Empty dependencies file for sparse_stats_test.
# This may be replaced when dependencies are built.
