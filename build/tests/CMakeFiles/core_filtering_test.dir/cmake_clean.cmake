file(REMOVE_RECURSE
  "CMakeFiles/core_filtering_test.dir/core/filtering_test.cpp.o"
  "CMakeFiles/core_filtering_test.dir/core/filtering_test.cpp.o.d"
  "core_filtering_test"
  "core_filtering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_filtering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
