# Empty dependencies file for perf_cost_model_test.
# This may be replaced when dependencies are built.
