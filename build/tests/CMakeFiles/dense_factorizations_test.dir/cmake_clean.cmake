file(REMOVE_RECURSE
  "CMakeFiles/dense_factorizations_test.dir/dense/factorizations_test.cpp.o"
  "CMakeFiles/dense_factorizations_test.dir/dense/factorizations_test.cpp.o.d"
  "dense_factorizations_test"
  "dense_factorizations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_factorizations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
