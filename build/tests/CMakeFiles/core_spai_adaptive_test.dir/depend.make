# Empty dependencies file for core_spai_adaptive_test.
# This may be replaced when dependencies are built.
