file(REMOVE_RECURSE
  "CMakeFiles/core_spai_adaptive_test.dir/core/spai_adaptive_test.cpp.o"
  "CMakeFiles/core_spai_adaptive_test.dir/core/spai_adaptive_test.cpp.o.d"
  "core_spai_adaptive_test"
  "core_spai_adaptive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spai_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
