# Empty dependencies file for sparse_pattern_test.
# This may be replaced when dependencies are built.
