file(REMOVE_RECURSE
  "CMakeFiles/sparse_pattern_test.dir/sparse/pattern_test.cpp.o"
  "CMakeFiles/sparse_pattern_test.dir/sparse/pattern_test.cpp.o.d"
  "sparse_pattern_test"
  "sparse_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
