# Empty dependencies file for solver_pcg_test.
# This may be replaced when dependencies are built.
