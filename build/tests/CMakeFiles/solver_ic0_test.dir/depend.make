# Empty dependencies file for solver_ic0_test.
# This may be replaced when dependencies are built.
