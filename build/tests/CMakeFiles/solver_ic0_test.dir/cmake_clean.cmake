file(REMOVE_RECURSE
  "CMakeFiles/solver_ic0_test.dir/solver/ic0_test.cpp.o"
  "CMakeFiles/solver_ic0_test.dir/solver/ic0_test.cpp.o.d"
  "solver_ic0_test"
  "solver_ic0_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_ic0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
