# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for solver_ic0_test.
