# Empty compiler generated dependencies file for cachesim_cache_model_test.
# This may be replaced when dependencies are built.
