file(REMOVE_RECURSE
  "CMakeFiles/cachesim_cache_reference_test.dir/cachesim/cache_reference_test.cpp.o"
  "CMakeFiles/cachesim_cache_reference_test.dir/cachesim/cache_reference_test.cpp.o.d"
  "cachesim_cache_reference_test"
  "cachesim_cache_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_cache_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
