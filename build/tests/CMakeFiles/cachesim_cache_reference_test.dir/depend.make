# Empty dependencies file for cachesim_cache_reference_test.
# This may be replaced when dependencies are built.
