# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sparse_pattern_fuzz_test.
