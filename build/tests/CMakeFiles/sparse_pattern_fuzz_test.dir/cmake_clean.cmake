file(REMOVE_RECURSE
  "CMakeFiles/sparse_pattern_fuzz_test.dir/sparse/pattern_fuzz_test.cpp.o"
  "CMakeFiles/sparse_pattern_fuzz_test.dir/sparse/pattern_fuzz_test.cpp.o.d"
  "sparse_pattern_fuzz_test"
  "sparse_pattern_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_pattern_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
