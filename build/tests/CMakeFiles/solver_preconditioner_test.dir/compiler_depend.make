# Empty compiler generated dependencies file for solver_preconditioner_test.
# This may be replaced when dependencies are built.
