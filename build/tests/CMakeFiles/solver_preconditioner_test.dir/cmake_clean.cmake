file(REMOVE_RECURSE
  "CMakeFiles/solver_preconditioner_test.dir/solver/preconditioner_test.cpp.o"
  "CMakeFiles/solver_preconditioner_test.dir/solver/preconditioner_test.cpp.o.d"
  "solver_preconditioner_test"
  "solver_preconditioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_preconditioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
