file(REMOVE_RECURSE
  "CMakeFiles/core_factor_io_test.dir/core/factor_io_test.cpp.o"
  "CMakeFiles/core_factor_io_test.dir/core/factor_io_test.cpp.o.d"
  "core_factor_io_test"
  "core_factor_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_factor_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
