# Empty dependencies file for core_factor_io_test.
# This may be replaced when dependencies are built.
