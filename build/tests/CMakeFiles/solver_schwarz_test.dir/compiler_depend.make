# Empty compiler generated dependencies file for solver_schwarz_test.
# This may be replaced when dependencies are built.
