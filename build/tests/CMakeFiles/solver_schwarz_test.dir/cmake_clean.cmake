file(REMOVE_RECURSE
  "CMakeFiles/solver_schwarz_test.dir/solver/schwarz_test.cpp.o"
  "CMakeFiles/solver_schwarz_test.dir/solver/schwarz_test.cpp.o.d"
  "solver_schwarz_test"
  "solver_schwarz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_schwarz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
