file(REMOVE_RECURSE
  "CMakeFiles/dist_dist_test.dir/dist/dist_test.cpp.o"
  "CMakeFiles/dist_dist_test.dir/dist/dist_test.cpp.o.d"
  "dist_dist_test"
  "dist_dist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
