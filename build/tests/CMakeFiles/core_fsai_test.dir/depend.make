# Empty dependencies file for core_fsai_test.
# This may be replaced when dependencies are built.
