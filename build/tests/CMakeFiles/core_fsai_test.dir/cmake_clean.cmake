file(REMOVE_RECURSE
  "CMakeFiles/core_fsai_test.dir/core/fsai_test.cpp.o"
  "CMakeFiles/core_fsai_test.dir/core/fsai_test.cpp.o.d"
  "core_fsai_test"
  "core_fsai_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fsai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
