# Empty dependencies file for solver_gmres_test.
# This may be replaced when dependencies are built.
