file(REMOVE_RECURSE
  "CMakeFiles/solver_gmres_test.dir/solver/gmres_test.cpp.o"
  "CMakeFiles/solver_gmres_test.dir/solver/gmres_test.cpp.o.d"
  "solver_gmres_test"
  "solver_gmres_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_gmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
