file(REMOVE_RECURSE
  "CMakeFiles/graph_multilevel_test.dir/graph/multilevel_test.cpp.o"
  "CMakeFiles/graph_multilevel_test.dir/graph/multilevel_test.cpp.o.d"
  "graph_multilevel_test"
  "graph_multilevel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_multilevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
