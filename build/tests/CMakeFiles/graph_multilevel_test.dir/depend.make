# Empty dependencies file for graph_multilevel_test.
# This may be replaced when dependencies are built.
