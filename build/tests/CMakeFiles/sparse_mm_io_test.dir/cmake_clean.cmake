file(REMOVE_RECURSE
  "CMakeFiles/sparse_mm_io_test.dir/sparse/mm_io_test.cpp.o"
  "CMakeFiles/sparse_mm_io_test.dir/sparse/mm_io_test.cpp.o.d"
  "sparse_mm_io_test"
  "sparse_mm_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_mm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
