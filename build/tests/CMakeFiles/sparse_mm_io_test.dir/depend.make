# Empty dependencies file for sparse_mm_io_test.
# This may be replaced when dependencies are built.
