# Empty dependencies file for core_pattern_extend_test.
# This may be replaced when dependencies are built.
