file(REMOVE_RECURSE
  "CMakeFiles/core_pattern_extend_test.dir/core/pattern_extend_test.cpp.o"
  "CMakeFiles/core_pattern_extend_test.dir/core/pattern_extend_test.cpp.o.d"
  "core_pattern_extend_test"
  "core_pattern_extend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pattern_extend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
