# Empty dependencies file for fig7_flops_zen2.
# This may be replaced when dependencies are built.
