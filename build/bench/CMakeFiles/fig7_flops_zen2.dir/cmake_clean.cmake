file(REMOVE_RECURSE
  "CMakeFiles/fig7_flops_zen2.dir/fig7_flops_zen2.cpp.o"
  "CMakeFiles/fig7_flops_zen2.dir/fig7_flops_zen2.cpp.o.d"
  "fig7_flops_zen2"
  "fig7_flops_zen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_flops_zen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
