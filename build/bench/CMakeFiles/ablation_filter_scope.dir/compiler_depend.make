# Empty compiler generated dependencies file for ablation_filter_scope.
# This may be replaced when dependencies are built.
