file(REMOVE_RECURSE
  "CMakeFiles/ablation_filter_scope.dir/ablation_filter_scope.cpp.o"
  "CMakeFiles/ablation_filter_scope.dir/ablation_filter_scope.cpp.o.d"
  "ablation_filter_scope"
  "ablation_filter_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filter_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
