file(REMOVE_RECURSE
  "CMakeFiles/amortization.dir/amortization.cpp.o"
  "CMakeFiles/amortization.dir/amortization.cpp.o.d"
  "amortization"
  "amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
