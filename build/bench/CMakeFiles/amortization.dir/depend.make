# Empty dependencies file for amortization.
# This may be replaced when dependencies are built.
