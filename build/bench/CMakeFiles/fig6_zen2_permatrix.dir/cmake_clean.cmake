file(REMOVE_RECURSE
  "CMakeFiles/fig6_zen2_permatrix.dir/fig6_zen2_permatrix.cpp.o"
  "CMakeFiles/fig6_zen2_permatrix.dir/fig6_zen2_permatrix.cpp.o.d"
  "fig6_zen2_permatrix"
  "fig6_zen2_permatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_zen2_permatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
