# Empty dependencies file for fig6_zen2_permatrix.
# This may be replaced when dependencies are built.
