# Empty compiler generated dependencies file for comm_invariance.
# This may be replaced when dependencies are built.
