file(REMOVE_RECURSE
  "CMakeFiles/comm_invariance.dir/comm_invariance.cpp.o"
  "CMakeFiles/comm_invariance.dir/comm_invariance.cpp.o.d"
  "comm_invariance"
  "comm_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
