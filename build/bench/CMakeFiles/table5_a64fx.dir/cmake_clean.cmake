file(REMOVE_RECURSE
  "CMakeFiles/table5_a64fx.dir/table5_a64fx.cpp.o"
  "CMakeFiles/table5_a64fx.dir/table5_a64fx.cpp.o.d"
  "table5_a64fx"
  "table5_a64fx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_a64fx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
