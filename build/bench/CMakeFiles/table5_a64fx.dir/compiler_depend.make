# Empty compiler generated dependencies file for table5_a64fx.
# This may be replaced when dependencies are built.
