# Empty dependencies file for ablation_pipelined.
# This may be replaced when dependencies are built.
