file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipelined.dir/ablation_pipelined.cpp.o"
  "CMakeFiles/ablation_pipelined.dir/ablation_pipelined.cpp.o.d"
  "ablation_pipelined"
  "ablation_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
