file(REMOVE_RECURSE
  "CMakeFiles/table2_large.dir/table2_large.cpp.o"
  "CMakeFiles/table2_large.dir/table2_large.cpp.o.d"
  "table2_large"
  "table2_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
