# Empty compiler generated dependencies file for table2_large.
# This may be replaced when dependencies are built.
