# Empty compiler generated dependencies file for table4_hybrid.
# This may be replaced when dependencies are built.
