file(REMOVE_RECURSE
  "CMakeFiles/table4_hybrid.dir/table4_hybrid.cpp.o"
  "CMakeFiles/table4_hybrid.dir/table4_hybrid.cpp.o.d"
  "table4_hybrid"
  "table4_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
