# Empty dependencies file for imbalance_study.
# This may be replaced when dependencies are built.
