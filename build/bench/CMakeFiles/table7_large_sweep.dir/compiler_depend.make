# Empty compiler generated dependencies file for table7_large_sweep.
# This may be replaced when dependencies are built.
