# Empty compiler generated dependencies file for table6_zen2.
# This may be replaced when dependencies are built.
