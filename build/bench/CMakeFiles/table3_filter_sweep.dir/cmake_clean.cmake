file(REMOVE_RECURSE
  "CMakeFiles/table3_filter_sweep.dir/table3_filter_sweep.cpp.o"
  "CMakeFiles/table3_filter_sweep.dir/table3_filter_sweep.cpp.o.d"
  "table3_filter_sweep"
  "table3_filter_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_filter_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
