# Empty compiler generated dependencies file for table3_filter_sweep.
# This may be replaced when dependencies are built.
