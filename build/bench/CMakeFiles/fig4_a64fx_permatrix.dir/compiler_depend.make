# Empty compiler generated dependencies file for fig4_a64fx_permatrix.
# This may be replaced when dependencies are built.
