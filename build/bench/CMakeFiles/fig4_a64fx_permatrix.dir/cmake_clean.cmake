file(REMOVE_RECURSE
  "CMakeFiles/fig4_a64fx_permatrix.dir/fig4_a64fx_permatrix.cpp.o"
  "CMakeFiles/fig4_a64fx_permatrix.dir/fig4_a64fx_permatrix.cpp.o.d"
  "fig4_a64fx_permatrix"
  "fig4_a64fx_permatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_a64fx_permatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
