file(REMOVE_RECURSE
  "CMakeFiles/ablation_schwarz.dir/ablation_schwarz.cpp.o"
  "CMakeFiles/ablation_schwarz.dir/ablation_schwarz.cpp.o.d"
  "ablation_schwarz"
  "ablation_schwarz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schwarz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
