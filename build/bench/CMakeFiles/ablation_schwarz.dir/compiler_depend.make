# Empty compiler generated dependencies file for ablation_schwarz.
# This may be replaced when dependencies are built.
