# Empty dependencies file for fig3_cache_skylake.
# This may be replaced when dependencies are built.
