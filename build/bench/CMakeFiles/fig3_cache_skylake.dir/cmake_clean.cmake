file(REMOVE_RECURSE
  "CMakeFiles/fig3_cache_skylake.dir/fig3_cache_skylake.cpp.o"
  "CMakeFiles/fig3_cache_skylake.dir/fig3_cache_skylake.cpp.o.d"
  "fig3_cache_skylake"
  "fig3_cache_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cache_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
