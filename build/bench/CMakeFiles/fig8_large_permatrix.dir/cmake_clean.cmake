file(REMOVE_RECURSE
  "CMakeFiles/fig8_large_permatrix.dir/fig8_large_permatrix.cpp.o"
  "CMakeFiles/fig8_large_permatrix.dir/fig8_large_permatrix.cpp.o.d"
  "fig8_large_permatrix"
  "fig8_large_permatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_large_permatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
