file(REMOVE_RECURSE
  "CMakeFiles/fig2_skylake_permatrix.dir/fig2_skylake_permatrix.cpp.o"
  "CMakeFiles/fig2_skylake_permatrix.dir/fig2_skylake_permatrix.cpp.o.d"
  "fig2_skylake_permatrix"
  "fig2_skylake_permatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_skylake_permatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
