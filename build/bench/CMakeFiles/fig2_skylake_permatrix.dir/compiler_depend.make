# Empty compiler generated dependencies file for fig2_skylake_permatrix.
# This may be replaced when dependencies are built.
