file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparsity_level.dir/ablation_sparsity_level.cpp.o"
  "CMakeFiles/ablation_sparsity_level.dir/ablation_sparsity_level.cpp.o.d"
  "ablation_sparsity_level"
  "ablation_sparsity_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparsity_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
