# Empty compiler generated dependencies file for ablation_sparsity_level.
# This may be replaced when dependencies are built.
