file(REMOVE_RECURSE
  "CMakeFiles/comm_study.dir/comm_study.cpp.o"
  "CMakeFiles/comm_study.dir/comm_study.cpp.o.d"
  "comm_study"
  "comm_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
