// fsaic — command-line front end of the library.
//
//   fsaic analyze  <matrix.mtx> [--ranks P]
//       Structure, partition-quality and conditioning report.
//   fsaic solve    <matrix.mtx> [options]
//   fsaic solve    --gen <spec> [options]
//       Preconditioned CG solve with the FSAI family. With --gen the
//       operator is generated rank-local from a workload spec (see
//       docs/workload-generation.md) instead of read from a file — no
//       global matrix is materialized for the matrix-free preconditioners
//       (jacobi/block-jacobi/block-ic0/none), so million-row weak-scaling
//       operators fit in per-rank memory.
//         --method fsai|fsaie|fsaie-comm|fsaie-full|jacobi|block-jacobi|
//                  block-ic0|schwarz|none  (default fsaie-comm)
//         --overlap K         Schwarz overlap level      (default 1)
//         --ranks P           simulated ranks            (default 8)
//         --threads T         threads/rank for the cost model (default 8);
//                             when given explicitly, also runs the solve on
//                             T real threads (bit-identical residuals). The
//                             FSAIC_THREADS env var sets the default.
//         --filter F          filter value               (default 0.01)
//         --static            static instead of dynamic filtering
//         --machine M         skylake|a64fx|zen2         (default skylake)
//         --comm C            flat|node-aware halo exchange (default flat;
//                             FSAIC_COMM sets the default). node-aware
//                             coalesces inter-node messages through node
//                             leaders and overlaps the exchange with the
//                             interior SpMV — residuals stay bit-identical
//         --ranks-per-node N  simulated ranks per node (the
//                             FSAIC_RANKS_PER_NODE env var sets the default).
//                             When neither is given under --comm node-aware,
//                             the cheapest of {1,2,4,8} per the machine's
//                             cost model is picked automatically
//         --tol T             relative tolerance         (default 1e-8)
//         --format F          csr|sell|auto rank-local kernel backend
//                             (default csr; FSAIC_FORMAT sets the default).
//                             sell is the SELL-C-sigma SIMD layout — residual
//                             histories stay bit-identical in double. auto
//                             picks the least-padded SELL chunk per matrix,
//                             falling back to csr past 1.25x padding
//         --precision P       double|single factor storage (default double).
//                             single stores G and G^T in float32 (double
//                             accumulation, CG vectors stay double); the
//                             system matrix always stays double
//         --separate-sweeps   run the historic separate AXPY/XPBY sweeps
//                             instead of the fused single-pass kernels
//                             (bit-identical; for A/B benchmarking)
//         --pipelined         Chronopoulos-Gear CG (1 allreduce/iter)
//         --gmres             restarted GMRES(50) instead of CG
//         --rcm               apply RCM reordering before partitioning
//         --rhs PATH          load the right-hand side from a MatrixMarket
//                             vector file instead of synthesizing one
//         --save-factor PATH  serialize the computed G factor (records the
//                             system fingerprint for load-time validation)
//         --load-factor PATH  reuse a previously saved factor; fails if it
//                             was built for a different matrix
//         --trace PATH        Chrome trace_event JSON of setup + solve phases
//         --report PATH       JSONL run report (one run line + per-iteration)
//   fsaic bench    [small|large] [--machine M] [--threads T] [--filter F]
//                  [--report PATH]
//       Run a suite through the experiment harness: FSAI baseline vs
//       FSAIE-Comm per matrix, plus a metrics summary.
//   fsaic serve    --requests in.jsonl --report out.jsonl [options]
//       Long-lived solve service: bounded request queue, fingerprint-sharded
//       worker pool with idle stealing, two-tier (RAM + disk) factor cache,
//       multi-RHS batching, priority lanes with earliest-deadline-first
//       ordering, and predictive admission control (docs/service.md).
//         --requests PATH     JSONL request file ("-" = stdin)
//         --report PATH       JSONL response file ("-" = stdout, default)
//         --workers N         worker threads              (default 1)
//         --queue-capacity Q  admission bound             (default 64)
//         --cache-capacity K  resident factors            (default 8)
//         --store DIR         disk tier for the factor cache: factors are
//                             persisted fingerprint-addressed under DIR and
//                             reloaded on cache miss, so a restarted service
//                             warm-starts from the store
//         --store-max-bytes B cap the store's total on-disk footprint; when
//                             a persist pushes past B, the least-recently-
//                             accessed factor files are evicted (0 =
//                             unlimited, the default)
//         --solver-threads T  executor threads per worker (default 1)
//         --no-batch          disable multi-RHS coalescing
//         --metrics PATH      JSON metrics dump (queue/cache/latency)
//         --prom PATH         Prometheus text-format metrics exposition
//         --metrics-interval S  refresh --metrics/--prom every S seconds
//                             (atomic file replace; 0 = end of run only)
//         --log PATH          structured JSONL log ("-" = stderr); the
//                             FSAIC_LOG env var is the flagless equivalent
//         --log-level L       debug|info|warn|error       (default info)
//         --trace PATH        Chrome trace_event JSON of the request
//                             lifecycle (queue/setup/solve slices per rid)
//         --watch DIR         serve request files dropped into DIR
//         --poll-ms MS        watch poll interval         (default 200)
//         --once              process the watch directory once and exit
//       Both modes append a {"kind":"serve"} summary record to the file
//       named by FSAIC_REPORT when that env var is set.
//   fsaic suite    [small|large]
//       List the built-in synthetic suites.
//   fsaic generate <entry-name> <out.mtx>
//       Write one suite matrix to a MatrixMarket file.
//   fsaic gen      <spec> [--ranks P] [--out file.mtx]
//       Resolve a workload spec ("stencil3d:n=100", "rgg2d:rows_per_rank=
//       65536,radius=auto", ...), generate it rank-local over P simulated
//       ranks and print operator + distribution stats (rows, nnz, per-rank
//       peak, halo volume, content fingerprint). --out additionally writes
//       the assembled operator to a MatrixMarket file (this one path does
//       materialize the global matrix; see docs/workload-generation.md).
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/factor_io.hpp"
#include "core/fsai_driver.hpp"
#include "exec/exec_policy.hpp"
#include "graph/rcm.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "matgen/suite.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "perf/cost_model.hpp"
#include "perf/setup_cost.hpp"
#include "service/solve_service.hpp"
#include "solver/ic0.hpp"
#include "solver/gmres.hpp"
#include "solver/pipelined_cg.hpp"
#include "solver/schwarz.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/ops.hpp"
#include "sparse/stats.hpp"
#include "wgen/wgen.hpp"

namespace {

using namespace fsaic;

int usage() {
  std::cerr << "usage: fsaic <analyze|solve|bench|serve|suite|generate|gen> ...\n"
            << "       (see the header of tools/fsaic.cpp for options)\n";
  return 1;
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  [[nodiscard]] bool has(const std::string& key) const {
    for (const auto& [k, v] : options) {
      if (k == key) return true;
    }
    return false;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return fallback;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      // Flags with values: everything except the boolean switches.
      const bool boolean = a == "--static" || a == "--pipelined" ||
                           a == "--rcm" || a == "--gmres" ||
                           a == "--no-batch" || a == "--once" ||
                           a == "--separate-sweeps";
      std::string value;
      if (!boolean && i + 1 < argc) {
        value = argv[++i];
      }
      args.options.emplace_back(a.substr(2), value);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const CsrMatrix a = read_matrix_market_file(args.positional[0]);
  const auto s = compute_matrix_stats(a);
  std::cout << args.positional[0] << "\n"
            << "  rows " << s.rows << ", nnz " << s.nnz << " (" << s.avg_row_nnz
            << "/row, min " << s.min_row_nnz << ", max " << s.max_row_nnz << ")\n"
            << "  symmetric: " << (s.symmetric ? "yes" : "NO") << "\n"
            << "  bandwidth " << s.bandwidth << ", dominant rows "
            << pct2(100.0 * s.diagonally_dominant_fraction) << "%\n";
  if (s.symmetric) {
    std::cout << "  estimated condition number "
              << strformat("%.3g", estimate_condition_number(a)) << "\n";
  }
  const Graph g = Graph::from_pattern(a.pattern());
  std::cout << "  graph: " << g.num_edges() << " edges, "
            << g.component_count() << " component(s)\n";
  const auto nranks = static_cast<rank_t>(std::stoi(args.get("ranks", "8")));
  const PartitionedSystem sys = partition_system(a, nranks);
  const auto dist = DistCsr::distribute(sys.matrix, sys.layout);
  std::cout << "  partition into " << nranks << " ranks: edge cut "
            << sys.edge_cut << ", imbalance "
            << strformat("%.3f", sys.partition_imbalance)
            << ", halo/update " << dist.halo_update_bytes() << " B in "
            << dist.halo_update_messages() << " messages\n";
  const Graph gperm = Graph::from_pattern(sys.matrix.pattern());
  const auto rcm = rcm_permutation(gperm);
  std::cout << "  RCM would reduce bandwidth " << pattern_bandwidth(a.pattern())
            << " -> "
            << pattern_bandwidth(
                   permute_symmetric(sys.matrix, rcm).pattern())
            << "\n";
  return 0;
}

int cmd_solve(const Args& args) {
  const bool gen_mode = args.has("gen");
  if (!gen_mode && args.positional.empty()) return usage();
  FSAIC_REQUIRE(!gen_mode || args.positional.empty(),
                "--gen replaces the positional matrix file");
  CsrMatrix a;  // stays empty with --gen: the operator is generated rank-local
  if (!gen_mode) {
    a = read_matrix_market_file(args.positional[0]);
    FSAIC_REQUIRE(a.rows() == a.cols(), "matrix must be square");
    FSAIC_REQUIRE(a.is_symmetric(1e-10 * a.max_abs()),
                  "matrix must be symmetric (CG requires SPD)");
  }
  const std::string operator_name =
      gen_mode ? args.get("gen", "") : args.positional[0];

  const Machine machine = machine_by_name(args.get("machine", "skylake"));
  const auto nranks = static_cast<rank_t>(std::stoi(args.get("ranks", "8")));
  const int threads = std::stoi(args.get("threads", "8"));
  // `--threads` has always parameterized the *cost model* (default 8); it
  // switches the actual execution engine only when passed explicitly, so a
  // bare `fsaic solve m.mtx` stays sequential. FSAIC_THREADS sets the
  // process default either way.
  ExecPolicy exec_policy = ExecPolicy::from_env();
  if (args.has("threads")) exec_policy.nthreads = threads;
  const auto exec = make_executor(exec_policy);
  const value_t filter = std::stod(args.get("filter", "0.01"));
  const value_t tol = std::stod(args.get("tol", "1e-8"));
  const std::string method = args.get("method", "fsaie-comm");
  // Communication scheme: environment first, explicit flags win.
  CommConfig comm = CommConfig::from_env();
  if (args.has("comm")) {
    comm.mode = comm_mode_from_string(args.get("comm", "flat"));
  }
  if (args.has("ranks-per-node")) {
    comm.ranks_per_node = std::max(1, std::stoi(args.get("ranks-per-node", "1")));
  }

  // Observability attachments: a trace recorder shared by the setup pipeline
  // and the solver, and a collecting sink feeding the JSONL report. Both are
  // null (zero-overhead) unless the corresponding flag was given. The output
  // files are opened before the solve so a bad path fails fast.
  TraceRecorder trace_rec;
  TraceRecorder* const trace = args.has("trace") ? &trace_rec : nullptr;
  std::ofstream trace_out;
  if (trace != nullptr) {
    trace_out.open(args.get("trace", ""));
    FSAIC_REQUIRE(trace_out.good(),
                  "cannot open trace output file: " + args.get("trace", ""));
  }
  CollectingSink sink;
  TelemetrySink* const sinkp = args.has("report") ? &sink : nullptr;
  std::unique_ptr<RunReportWriter> report;
  if (args.has("report")) {
    report = std::make_unique<RunReportWriter>(args.get("report", ""));
  }

  if (args.has("rcm")) {
    FSAIC_REQUIRE(!gen_mode,
                  "--rcm needs a matrix file: generated operators are "
                  "assembled rank-local in their natural row order");
    const Graph g = Graph::from_pattern(a.pattern());
    a = permute_symmetric(a, rcm_permutation(g));
    std::cout << "applied RCM: bandwidth now " << pattern_bandwidth(a.pattern())
              << "\n";
  }

  // Kernel backend: environment first (FSAIC_FORMAT), explicit flags win.
  // Mixed precision is factor-only — the system matrix A always stays at
  // double, so the CG recurrence itself is untouched.
  KernelConfig kernel = KernelConfig::from_env();
  if (args.has("format")) {
    const std::string fmt = args.get("format", "csr");
    if (fmt == "auto") {
      kernel.autotune = true;
    } else {
      kernel.autotune = false;
      kernel.format = operator_format_from_string(fmt);
    }
  }
  KernelConfig factor_kernel = kernel;
  if (args.has("precision")) {
    factor_kernel.precision =
        factor_precision_from_string(args.get("precision", "double"));
  }

  PartitionedSystem sys;
  wgen::WgenStats gen_stats;
  DistCsr a_dist = [&] {
    if (gen_mode) {
      // Rank-local generation: each simulated rank assembles only its own
      // row block, so no global matrix exists and peak per-rank memory is
      // O(rows/rank). The permutation is identity — specs enumerate rows in
      // an order that is already contiguous per rank.
      const wgen::ResolvedWorkload w = wgen::resolve_workload(
          wgen::parse_workload_spec(args.get("gen", "")), nranks);
      DistCsr d = wgen::generate_dist(w, nranks, comm, &gen_stats, exec.get());
      sys.layout = d.row_layout();
      sys.perm.resize(static_cast<std::size_t>(sys.layout.global_size()));
      std::iota(sys.perm.begin(), sys.perm.end(), index_t{0});
      return d;
    }
    sys = partition_system(a, nranks);
    return DistCsr::distribute(sys.matrix, sys.layout, comm);
  }();
  a_dist.use_kernel(kernel);
  if (gen_mode) {
    std::cout << operator_name << ": " << gen_stats.rows << " rows, "
              << gen_stats.nnz << " nnz over " << nranks
              << " ranks, generated rank-local (per-rank peak "
              << gen_stats.max_rank_nnz << " nnz, balance "
              << strformat("%.3f", gen_stats.balance()) << ")\n";
  } else {
    std::cout << operator_name << ": " << sys.matrix.rows() << " rows, "
              << sys.matrix.nnz() << " nnz over " << nranks
              << " ranks (edge cut " << sys.edge_cut << ")\n";
  }

  // Methods that build from the assembled matrix (schwarz + the FSAI
  // family) need a global copy; with --gen it is materialized on demand so
  // the matrix-free preconditioners (jacobi / block-jacobi / block-ic0 /
  // none) keep the whole run free of any global matrix.
  const auto ensure_global = [&]() -> const CsrMatrix& {
    if (gen_mode && sys.matrix.rows() == 0) {
      std::cout << "note: method " << method
                << " assembles the generated operator globally for setup\n";
      sys.matrix = a_dist.to_global();
    }
    return sys.matrix;
  };

  // Node-aware runs without an explicit node geometry pick one: score the
  // candidate ranks-per-node values against the machine's cost model (one
  // modeled CG iteration = SpMV halo exchange + 3 allreduces) and keep the
  // cheapest. Explicit --ranks-per-node or FSAIC_RANKS_PER_NODE wins.
  const char* rpn_env = std::getenv("FSAIC_RANKS_PER_NODE");
  if (comm.mode == CommMode::NodeAware && !args.has("ranks-per-node") &&
      (rpn_env == nullptr || *rpn_env == '\0')) {
    int best_rpn = 1;
    double best_score = 0.0;
    for (const int rpn : {1, 2, 4, 8}) {
      if (rpn > nranks) continue;
      CommConfig trial = comm;
      trial.ranks_per_node = rpn;
      const CostModel trial_cost(machine,
                                 {.threads_per_rank = threads, .comm = trial});
      const double score = trial_cost.spmv_cost(a_dist).total() +
                           3.0 * trial_cost.allreduce_cost(nranks);
      if (best_score == 0.0 || score < best_score) {
        best_score = score;
        best_rpn = rpn;
      }
    }
    comm.ranks_per_node = best_rpn;
    a_dist.use_comm(comm);
    std::cout << "auto ranks/node: picked " << best_rpn << " on "
              << machine.name << " (modeled iteration " << sci2(best_score)
              << " s)\n";
  }

  // Right-hand side: loaded from a MatrixMarket vector file when --rhs is
  // given, otherwise synthesized per the paper's setup.
  std::vector<value_t> bg;
  const index_t global_rows = sys.layout.global_size();
  if (args.has("rhs")) {
    bg = read_matrix_market_vector_file(args.get("rhs", ""));
    FSAIC_REQUIRE(bg.size() == static_cast<std::size_t>(global_rows),
                  "right-hand side length " + std::to_string(bg.size()) +
                      " does not match matrix rows " +
                      std::to_string(global_rows));
  } else {
    Rng rng(2022);
    bg.resize(static_cast<std::size_t>(global_rows));
    for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  }
  std::vector<value_t> b_perm(bg.size());
  for (std::size_t i = 0; i < bg.size(); ++i) {
    b_perm[static_cast<std::size_t>(sys.perm[i])] = bg[i];
  }
  const DistVector b(sys.layout, b_perm);

  std::unique_ptr<Preconditioner> precond;
  const CostModel cost(machine, {.threads_per_rank = threads, .comm = comm});
  double apply_cost = 0.0;
  // Setup accounting of the factorized build, attached to the report's run
  // record (stays null for the non-FSAI methods and loaded factors).
  JsonValue setup_json;
  if (method == "none") {
    precond = std::make_unique<IdentityPreconditioner>();
  } else if (method == "jacobi") {
    precond = std::make_unique<JacobiPreconditioner>(a_dist);
  } else if (method == "block-jacobi") {
    precond = std::make_unique<BlockJacobiPreconditioner>(a_dist, 32);
  } else if (method == "block-ic0") {
    precond = std::make_unique<BlockIc0Preconditioner>(a_dist);
  } else if (method == "schwarz") {
    const int overlap = std::stoi(args.get("overlap", "1"));
    auto ras = std::make_unique<SchwarzPreconditioner>(ensure_global(),
                                                       sys.layout, overlap);
    std::cout << "schwarz overlap " << overlap << ": "
              << ras->apply_halo_bytes() << " halo B/application\n";
    precond = std::move(ras);
  } else {
    FsaiOptions opts;
    opts.cache_line_bytes = machine.l1.line_bytes;
    opts.exec = exec.get();
    opts.trace = trace;
    opts.filter = filter;
    opts.filter_strategy =
        args.has("static") ? FilterStrategy::Static : FilterStrategy::Dynamic;
    if (method == "fsai") {
      opts.extension = ExtensionMode::None;
      opts.filter = 0.0;
    } else if (method == "fsaie") {
      opts.extension = ExtensionMode::LocalOnly;
    } else if (method == "fsaie-comm") {
      opts.extension = ExtensionMode::CommAware;
    } else if (method == "fsaie-full") {
      opts.extension = ExtensionMode::FullHalo;
    } else {
      std::cerr << "unknown method: " << method << "\n";
      return 1;
    }
    if (args.has("load-factor")) {
      const SavedFactor saved = load_factor(args.get("load-factor", ""));
      FSAIC_REQUIRE(saved.layout == sys.layout,
                    "saved factor was built for a different layout");
      require_factor_matches(saved, ensure_global());
      const DistCsr g_dist = DistCsr::distribute(saved.g, saved.layout, comm);
      const DistCsr gt_dist =
          DistCsr::distribute(transpose(saved.g), saved.layout, comm);
      apply_cost = cost.spmv_cost(g_dist).total() + cost.spmv_cost(gt_dist).total();
      precond = std::make_unique<FactorizedPreconditioner>(g_dist, gt_dist,
                                                           method + "(loaded)");
    } else {
      FsaiBuildResult build =
          build_fsai_preconditioner(ensure_global(), sys.layout, opts);
      build.g_dist.use_comm(comm);
      build.gt_dist.use_comm(comm);
      std::cout << method << ": +" << pct2(build.nnz_increase_pct)
                << "% pattern entries, imbalance index "
                << strformat("%.3f", build.imbalance_avg()) << ", setup "
                << sci2(estimate_build_setup(build, sys.layout, machine, threads)
                            .time)
                << " s (modeled)\n";
      if (args.has("save-factor")) {
        save_factor(args.get("save-factor", ""), build.g, sys.layout,
                    fingerprint_of(sys.matrix));
        std::cout << "factor saved to " << args.get("save-factor", "") << "\n";
      }
      setup_json = JsonValue::object();
      setup_json["g_nnz"] = build.g.nnz();
      setup_json["rows_solved"] =
          static_cast<std::int64_t>(build.provisional_factor_stats.rows_solved) +
          static_cast<std::int64_t>(build.factor_stats.rows_solved);
      setup_json["rows_reused"] =
          static_cast<std::int64_t>(build.factor_stats.rows_reused);
      setup_json["gram_entries_gathered"] =
          build.provisional_factor_stats.gram_entries_gathered +
          build.factor_stats.gram_entries_gathered;
      setup_json["provisional_fallback_rows"] =
          build.provisional_factor_stats.fallback_rows;
      setup_json["provisional_degenerate_rows"] =
          build.provisional_factor_stats.degenerate_rows;
      setup_json["fallback_rows"] = build.factor_stats.fallback_rows;
      setup_json["degenerate_rows"] = build.factor_stats.degenerate_rows;
      apply_cost = cost.spmv_cost(build.g_dist).total() +
                   cost.spmv_cost(build.gt_dist).total();
      precond = std::make_unique<FactorizedPreconditioner>(
          build.g_dist, build.gt_dist, method);
    }
  }

  precond->set_trace(trace);
  // Swap the factors onto the requested kernel backend (the system matrix
  // was switched right after distribute; only the factorized family carries
  // its own DistCsr operators).
  double factor_padding = 1.0;
  if (auto* fp = dynamic_cast<FactorizedPreconditioner*>(precond.get())) {
    fp->use_kernel(factor_kernel);
    factor_padding = fp->padding_ratio();
  }
  // Report the *resolved* kernel: under --format auto the distribute-time
  // autotuner may have picked a different chunk (or fallen back to csr).
  const KernelConfig& a_kernel = a_dist.kernel_config();
  if (kernel.autotune) {
    std::cout << "kernel autotune: picked " << to_string(a_kernel.format);
    if (a_kernel.format == OperatorFormat::Sell) {
      std::cout << " C=" << a_kernel.sell_chunk;
    }
    std::cout << " (padding ratio " << strformat("%.3f", a_dist.padding_ratio())
              << ")\n";
  }
  if (a_kernel.format == OperatorFormat::Sell) {
    std::cout << "kernel backend sell (C=" << a_kernel.sell_chunk
              << ", sigma=" << a_kernel.sell_sigma << "): padding ratio A "
              << strformat("%.3f", a_dist.padding_ratio()) << ", factors "
              << strformat("%.3f", factor_padding) << "\n";
  }
  if (factor_kernel.precision == FactorPrecision::Single) {
    std::cout << "mixed precision: factors stored float32, CG vectors and A "
                 "stay double\n";
  }
  const bool fused = !args.has("separate-sweeps");
  DistVector x(sys.layout);
  const SolveOptions solve_opts{.rel_tol = tol, .max_iterations = 100000,
                                .sink = sinkp, .trace = trace,
                                .exec = exec.get(), .fused_sweeps = fused};
  const SolveResult r =
      args.has("gmres")
          ? gmres_solve(a_dist, b, x, *precond,
                        {.rel_tol = tol, .max_iterations = 100000,
                         .sink = sinkp, .trace = trace, .exec = exec.get()})
          : (args.has("pipelined")
                 ? pcg_solve_pipelined(a_dist, b, x, *precond, solve_opts)
                 : pcg_solve(a_dist, b, x, *precond, solve_opts));

  const double iter_cost = cost.spmv_cost(a_dist).total() +
                           cost.blas1_cost(sys.layout, 3) +
                           (args.has("pipelined") ? 1.0 : 3.0) *
                               cost.allreduce_cost(nranks) +
                           apply_cost;
  std::cout << (r.converged ? "converged" : "NOT converged") << " in "
            << r.iterations << " iterations (relative residual "
            << strformat("%.2e", r.final_residual / r.initial_residual)
            << ")\n"
            << "modeled time on " << machine.name << ": "
            << sci2(r.iterations * iter_cost) << " s\n"
            << "comm: " << r.comm.halo_messages << " halo messages ("
            << r.comm.halo_bytes << " B) over " << r.comm.neighbor_pair_count()
            << " neighbor pairs; " << r.comm.allreduce_count << " allreduces ("
            << r.comm.allreduce_bytes << " B)\n";
  if (comm.ranks_per_node > 1 || comm.mode == CommMode::NodeAware) {
    std::cout << "comm scheme " << to_string(comm.mode) << " (ranks/node "
              << comm.ranks_per_node << "): intra "
              << r.comm.halo_intra_messages << " msgs ("
              << r.comm.halo_intra_bytes << " B), inter "
              << r.comm.halo_inter_messages << " msgs ("
              << r.comm.halo_inter_bytes << " B); "
              << r.comm.async_allreduce_count << " async allreduces ("
              << r.comm.async_allreduce_bytes << " B)\n";
  }

  if (exec->threaded()) {
    const ExecStats es = exec->stats();
    double halo_wait_us = 0.0;
    for (double w : a_dist.halo_wait_us()) halo_wait_us += w;
    std::cout << "exec: " << es.nthreads << " threads, " << es.supersteps
              << " supersteps, " << es.allreduces << " tree allreduces; max "
              << "barrier wait " << sci2(es.max_barrier_wait_us() * 1e-6)
              << " s, total halo mailbox wait " << sci2(halo_wait_us * 1e-6)
              << " s\n";
  }

  if (trace != nullptr) {
    trace_rec.write_json(trace_out);
    std::cout << "trace: " << trace_rec.event_count() << " events -> "
              << args.get("trace", "")
              << " (load in chrome://tracing or Perfetto)\n";
  }
  if (report != nullptr) {
    JsonValue rec;
    rec["kind"] = "run";
    rec["matrix"] = operator_name;
    rec["method"] = method;
    rec["solver"] = args.has("gmres")
                        ? "gmres"
                        : (args.has("pipelined") ? "pipelined-cg" : "pcg");
    rec["ranks"] = nranks;
    rec["comm_mode"] = to_string(comm.mode);
    rec["ranks_per_node"] = comm.ranks_per_node;
    rec["comm_intra_bytes"] = r.comm.halo_intra_bytes;
    rec["comm_inter_bytes"] = r.comm.halo_inter_bytes;
    rec["format"] = to_string(a_kernel.format);
    rec["precision"] = to_string(factor_kernel.precision);
    rec["padding_ratio"] = a_dist.padding_ratio();
    rec["factor_padding_ratio"] = factor_padding;
    rec["fused_sweeps"] = fused;
    rec["exec_threads"] = exec->nthreads();
    rec["exec_supersteps"] = static_cast<std::int64_t>(exec->stats().supersteps);
    rec["converged"] = r.converged;
    rec["iterations"] = r.iterations;
    rec["initial_residual"] = static_cast<double>(r.initial_residual);
    rec["final_residual"] = static_cast<double>(r.final_residual);
    rec["comm"] = comm_stats_to_json(r.comm);
    if (!setup_json.is_null()) rec["setup"] = setup_json;
    report->write(rec);
    for (const auto& s : sink.samples()) {
      JsonValue line;
      line["kind"] = "iteration";
      line["iteration"] = s.iteration;
      line["residual"] = s.residual;
      line["relative_residual"] = s.relative_residual;
      line["halo_bytes_delta"] = s.halo_bytes_delta;
      line["halo_messages_delta"] = s.halo_messages_delta;
      line["allreduce_delta"] = s.allreduce_delta;
      line["elapsed_us"] = s.elapsed_us;
      report->write(line);
    }
    std::cout << "report: " << report->records_written() << " records -> "
              << args.get("report", "") << "\n";
  }
  return r.converged ? 0 : 2;
}

// `fsaic bench`: run one suite through the experiment harness and print the
// FSAI-vs-FSAIE-Comm comparison with measured wall times, feeding the same
// metrics registry and JSONL report machinery as the bench binaries.
int cmd_bench(const Args& args) {
  const std::string which =
      args.positional.empty() ? "small" : args.positional[0];
  if (which != "small" && which != "large") return usage();
  const bool large = which == "large";

  ExperimentConfig cfg;
  cfg.machine = machine_by_name(args.get("machine", large ? "zen2" : "skylake"));
  cfg.threads_per_rank = std::stoi(args.get("threads", "8"));
  if (large) {
    cfg.nnz_per_rank = 8000;
    cfg.max_ranks = 64;
  }
  const value_t filter = std::stod(args.get("filter", "0.01"));

  ExperimentRunner runner(cfg);
  MetricsRegistry metrics;
  runner.set_metrics(&metrics);
  std::unique_ptr<RunReportWriter> report;
  if (args.has("report")) {
    report = std::make_unique<RunReportWriter>(args.get("report", ""));
    runner.set_report_writer(report.get());
  }

  const auto suite = large ? large_suite() : small_suite();
  TextTable table({"Matrix", "Ranks", "FSAI.it", "Comm.it", "Comm.%NNZ",
                   "time.dec%", "setup.s", "solve.s"});
  for (const auto& entry : suite) {
    const auto& base = runner.baseline(entry);
    const auto& comm = runner.run(
        entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, filter});
    table.add_row({entry.name, std::to_string(base.nranks),
                   std::to_string(base.iterations),
                   std::to_string(comm.iterations),
                   pct2(comm.nnz_increase_pct),
                   pct2(improvement_over(base, comm).time_pct),
                   sci2(comm.setup_seconds), sci2(comm.solve_seconds)});
  }
  table.print(std::cout);

  const auto snap = metrics.snapshot();
  std::cout << "\nmetrics (global counters):\n";
  for (const auto& [key, value] : snap.counters) {
    if (key.find(".rank") != std::string::npos) continue;
    std::cout << "  " << key << " = " << value << "\n";
  }
  if (report != nullptr) {
    std::cout << "report: " << report->records_written() << " records -> "
              << args.get("report", "") << "\n";
  }
  return 0;
}

// `fsaic serve`: drive the in-process solve service from a JSONL request
// file (or a watched directory of them). See docs/service.md for the
// protocol schema and backpressure semantics.
int cmd_serve(const Args& args) {
  ServiceOptions opts;
  opts.workers = std::stoi(args.get("workers", "1"));
  opts.queue_capacity =
      static_cast<std::size_t>(std::stoul(args.get("queue-capacity", "64")));
  opts.cache_capacity =
      static_cast<std::size_t>(std::stoul(args.get("cache-capacity", "8")));
  opts.solver_threads = std::stoi(args.get("solver-threads", "1"));
  opts.batching = !args.has("no-batch");
  // Disk tier: factors persist to --store and survive process restarts (a
  // warm restart reloads them on first miss instead of rebuilding).
  opts.store_dir = args.get("store", "");
  opts.store_max_bytes =
      static_cast<std::size_t>(std::stoull(args.get("store-max-bytes", "0")));

  MetricsRegistry metrics;
  opts.metrics = &metrics;

  // Structured logging: --log/--log-level win; FSAIC_LOG / FSAIC_LOG_LEVEL
  // are the flagless equivalent (useful under CI wrappers).
  std::unique_ptr<Logger> log;
  if (args.has("log")) {
    log = std::make_unique<Logger>(
        args.get("log", ""),
        log_level_from_string(args.get("log-level", "info")));
  } else {
    log = Logger::from_env();
  }
  opts.log = log.get();

  TraceRecorder trace_rec;
  if (args.has("trace")) opts.trace = &trace_rec;

  const std::string metrics_path = args.get("metrics", "");
  const std::string prom_path = args.get("prom", "");
  const auto write_snapshots = [&] {
    if (args.has("metrics")) {
      atomic_write_file(metrics_path, metrics.to_json().dump() + "\n");
    }
    if (args.has("prom")) {
      atomic_write_file(prom_path, render_prometheus(metrics));
    }
  };

  // Periodic exposition: a background thread atomically replaces the
  // --metrics / --prom files every --metrics-interval seconds, so a scraper
  // tailing the service always reads a complete, current snapshot.
  const double interval_s = std::stod(args.get("metrics-interval", "0"));
  std::mutex snap_mutex;
  std::condition_variable snap_cv;
  bool snap_stop = false;
  std::thread snapshot_thread;
  if (interval_s > 0.0 && (args.has("metrics") || args.has("prom"))) {
    snapshot_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(snap_mutex);
      while (!snap_cv.wait_for(lock,
                               std::chrono::duration<double>(interval_s),
                               [&] { return snap_stop; })) {
        write_snapshots();
      }
    });
  }

  // End-of-run reporting shared by --requests and --watch: console summary,
  // final metrics/trace dumps, and the FSAIC_REPORT serve record.
  const auto finish = [&](const ServiceStats& stats) {
    if (snapshot_thread.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(snap_mutex);
        snap_stop = true;
      }
      snap_cv.notify_all();
      snapshot_thread.join();
    }
    std::cerr << "serve: " << stats.submitted << " requests, "
              << stats.completed << " completed, " << stats.errors
              << " errors, "
              << stats.rejected_queue_full + stats.rejected_deadline +
                     stats.rejected_predicted
              << " rejected (" << stats.rejected_deadline << " deadline, "
              << stats.rejected_predicted << " predicted); " << stats.batches
              << " batches (max size " << stats.max_batch_size << "); cache "
              << stats.cache.hits << " hits / " << stats.cache.disk_hits
              << " disk / " << stats.cache.misses << " misses / "
              << stats.cache.evictions << " evictions / " << stats.cache.spills
              << " spills / " << stats.cache.store_evictions
              << " store evictions; " << stats.warm_starts
              << " warm starts\n";
    write_snapshots();
    if (args.has("metrics")) std::cout << "metrics -> " << metrics_path << "\n";
    if (args.has("prom")) std::cout << "prometheus -> " << prom_path << "\n";
    if (args.has("trace")) {
      trace_rec.write_file(args.get("trace", ""));
      std::cout << "trace: " << trace_rec.event_count() << " events -> "
                << args.get("trace", "") << "\n";
    }
    if (const char* rp = std::getenv("FSAIC_REPORT");
        rp != nullptr && *rp != '\0') {
      RunReportWriter report{std::string(rp)};
      report.write(serve_stats_to_json(stats));
      std::cerr << "report: serve summary -> " << rp << "\n";
    }
  };

  if (args.has("watch")) {
    const std::string dir = args.get("watch", "");
    const int poll_ms = std::stoi(args.get("poll-ms", "200"));
    std::cout << "watching " << dir << " for *.jsonl request files ("
              << opts.workers << " workers, cache capacity "
              << opts.cache_capacity << ")\n";
    int total = 0;
    ServiceStats stats;
    do {
      const int n = process_watch_directory(opts, dir, &stats);
      total += n;
      if (n > 0) std::cout << "served " << n << " request file(s)\n";
      if (!args.has("once")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      }
    } while (!args.has("once"));
    std::cout << "done: " << total << " request file(s) served\n";
    finish(stats);
    return 0;
  }

  if (!args.has("requests")) return usage();
  const std::string in_path = args.get("requests", "");
  const std::string out_path = args.get("report", "-");
  std::ifstream in_file;
  if (in_path != "-") {
    in_file.open(in_path);
    FSAIC_REQUIRE(in_file.good(), "cannot open request file: " + in_path);
  }
  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path);
    FSAIC_REQUIRE(out_file.good(), "cannot open response file: " + out_path);
  }
  std::istream& in = in_path == "-" ? std::cin : in_file;
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  const ServiceStats stats = serve_requests(opts, in, out);
  finish(stats);
  return 0;
}

int cmd_suite(const Args& args) {
  const std::string which =
      args.positional.empty() ? "small" : args.positional[0];
  TextTable table({"name", "mirrors", "type", "paper.FSAI.it", "paper.Comm.it"});
  const auto print = [&](const std::vector<SuiteEntry>& suite) {
    for (const auto& e : suite) {
      table.add_row({e.name, e.paper_name, e.type,
                     std::to_string(e.paper_fsai_iters),
                     std::to_string(e.paper_fsaie_comm_iters)});
    }
  };
  if (which == "small" || which == "all") print(small_suite());
  if (which == "large" || which == "all") print(large_suite());
  table.print(std::cout);
  return 0;
}

int cmd_generate(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto& entry = suite_entry(args.positional[0]);
  const CsrMatrix a = entry.generate();
  write_matrix_market_file(args.positional[1], a);
  std::cout << "wrote " << args.positional[1] << ": " << a.rows() << " rows, "
            << a.nnz() << " nnz (" << entry.type << ")\n";
  return 0;
}

// `fsaic gen`: resolve + generate a workload spec rank-local and report the
// operator / distribution / memory-footprint stats a weak-scaling study
// needs. No global matrix is built unless --out asks for a MatrixMarket
// export.
int cmd_gen(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nranks = static_cast<rank_t>(std::stoi(args.get("ranks", "8")));
  const wgen::WorkloadSpec spec =
      wgen::parse_workload_spec(args.positional[0]);
  const wgen::ResolvedWorkload w = wgen::resolve_workload(spec, nranks);
  CommConfig comm = CommConfig::from_env();
  if (args.has("comm")) {
    comm.mode = comm_mode_from_string(args.get("comm", "flat"));
  }
  if (args.has("ranks-per-node")) {
    comm.ranks_per_node =
        std::max(1, std::stoi(args.get("ranks-per-node", "1")));
  }
  const auto exec = make_executor(ExecPolicy::from_env());
  wgen::WgenStats stats;
  const DistCsr dist = wgen::generate_dist(w, nranks, comm, &stats, exec.get());
  const MatrixFingerprint fp = fingerprint_rank_local(dist);
  std::cout << spec.to_string() << ": " << stats.rows << " rows, " << stats.nnz
            << " nnz over " << nranks << " ranks\n"
            << "  per-rank peak: " << stats.max_rank_rows << " rows, "
            << stats.max_rank_nnz << " nnz (balance "
            << strformat("%.3f", stats.balance()) << ")\n"
            << "  halo/update " << dist.halo_update_bytes() << " B in "
            << dist.halo_update_messages() << " messages\n"
            << "  fingerprint " << hash_hex(fp.content_hash) << ", generated in "
            << sci2(stats.generate_seconds) << " s\n";
  if (args.has("out")) {
    const std::string out = args.get("out", "");
    write_matrix_market_file(out, wgen::generate_global(w));
    std::cout << "wrote " << out << " (global assembly — only this export "
              << "materializes the full operator)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "bench") return cmd_bench(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "suite") return cmd_suite(args);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "gen") return cmd_gen(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "fsaic: " << e.what() << "\n";
    return 1;
  }
}
