#!/usr/bin/env python3
"""Compare two BENCH_serve.json artifacts for serving-performance regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--max-rps-drop PCT]
                  [--max-p99-rise PCT]

Exits non-zero when the candidate's sustained throughput dropped, or its p99
total latency rose, by more than the thresholds (percent, defaults 20).
Everything else is informational: the full stage-by-stage latency delta and
the cache/batching deltas are printed either way, and workloads with
different digests are flagged (the comparison is then apples-to-oranges and
only reported, never enforced).

Stdlib only, so the CI job can run it on a bare runner.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fsaic.bench.serve/v1":
        sys.exit(f"{path}: not a fsaic.bench.serve/v1 artifact "
                 f"(schema={doc.get('schema')!r})")
    return doc


def pct_change(old, new):
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-rps-drop", type=float, default=20.0,
                    help="fail when throughput drops more than PCT (default 20)")
    ap.add_argument("--max-p99-rise", type=float, default=20.0,
                    help="fail when p99 total latency rises more than PCT "
                         "(default 20)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    same_workload = base["digests"]["workload"] == cand["digests"]["workload"]
    if not same_workload:
        print("note: workload digests differ "
              f"({base['digests']['workload']} vs "
              f"{cand['digests']['workload']}); latency/throughput deltas "
              "are informational only")

    rps_base = base["throughput_rps"]
    rps_cand = cand["throughput_rps"]
    rps_delta = pct_change(rps_base, rps_cand)
    print(f"throughput: {rps_base:.2f} -> {rps_cand:.2f} req/s "
          f"({rps_delta:+.1f}%)")

    p99_delta = 0.0
    for stage in ("queue", "setup", "solve", "total"):
        b = base["latency"][stage]
        c = cand["latency"][stage]
        for q in ("p50_us", "p95_us", "p99_us"):
            d = pct_change(b[q], c[q])
            print(f"latency.{stage}.{q[:-3]}: {b[q]:.0f} -> {c[q]:.0f} us "
                  f"({d:+.1f}%)")
            if stage == "total" and q == "p99_us":
                p99_delta = d

    hb, cb = base["cache"], cand["cache"]
    print(f"cache hit rate: {hb['hit_rate']:.2f} -> {cb['hit_rate']:.2f}")
    rb, rc = base["requests"], cand["requests"]
    print(f"completed: {rb['completed']} -> {rc['completed']}; rejected: "
          f"{rb['rejected_deadline'] + rb['rejected_queue_full']} -> "
          f"{rc['rejected_deadline'] + rc['rejected_queue_full']}")

    failures = []
    if same_workload:
        if rps_delta < -args.max_rps_drop:
            failures.append(
                f"throughput dropped {-rps_delta:.1f}% "
                f"(> {args.max_rps_drop:.1f}% allowed)")
        if p99_delta > args.max_p99_rise:
            failures.append(
                f"p99 total latency rose {p99_delta:.1f}% "
                f"(> {args.max_p99_rise:.1f}% allowed)")
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("OK: candidate within thresholds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
