#!/usr/bin/env python3
"""Compare bench artifacts for regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--max-rps-drop PCT]
                  [--max-p99-rise PCT]
    bench_diff.py CANDIDATE.json          (baseline defaults to the committed
                  bench/baselines/BENCH_serve.json next to this script)
    bench_diff.py --mode comm CANDIDATE.jsonl [BASELINE.jsonl]
                  [--max-comm-bytes-rise PCT]
    bench_diff.py --mode kernels CANDIDATE.json [BASELINE.json]
                  [--min-sell-speedup X] [--min-fast-fraction F]
                  [--max-padding-ratio R] [--max-gflops-drop PCT]
    bench_diff.py --mode weakscale CANDIDATE.json
                  [--min-rows N] [--max-balance B]

Default (serve) mode exits non-zero when the candidate's sustained
throughput dropped, or its p99 total latency rose, by more than the
thresholds (percent, defaults 20). Everything else is informational: the
full stage-by-stage latency delta and the cache/batching deltas are printed
either way, and workloads with different digests are flagged (the
comparison is then apples-to-oranges and only reported, never enforced).

Comm mode reads the comm_invariance bench's JSONL report and enforces the
communication contract on every matrix:
  - node-aware payload bytes equal the flat bytes exactly, and the
    intra + inter split sums to the total (aggregation merges messages,
    never duplicates or drops coefficients);
  - node-aware wire messages never exceed flat, and strictly decrease for
    at least one matrix (the aggregation must actually aggregate);
  - with a BASELINE report, per-matrix FSAIE-Comm halo bytes must not rise
    more than --max-comm-bytes-rise percent (default 0: byte-exact), and
    node-aware message counts must not rise at all.

Weakscale mode enforces the rank-local workload-generation contract on a
BENCH_weakscale.json artifact (bench/weak_scaling):
  - fixed series: the operator's content fingerprint is identical at every
    rank count and comm scheme (bit-identical generation), flat and
    node-aware residual digests match per rank count, the intra + inter
    byte split sums to the flat total, per-rank nnz balance stays under
    --max-balance, and the operator has at least --min-rows rows;
  - weak series: the comm-aware pattern extension admits exactly zero new
    communication columns while the full-halo strawman admits some, and
    the max per-rank halo recv bytes are byte-identical (+-0%) across all
    rank counts at fixed rows/rank.

Stdlib only, so the CI job can run it on a bare runner.
"""

import argparse
import json
import os
import sys

# The committed serve baseline: serve mode with a single positional compares
# that candidate against this artifact.
DEFAULT_SERVE_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "BENCH_serve.json")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fsaic.bench.serve/v1":
        sys.exit(f"{path}: not a fsaic.bench.serve/v1 artifact "
                 f"(schema={doc.get('schema')!r})")
    return doc


def pct_change(old, new):
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def load_comm_records(path):
    """Index a comm_invariance JSONL report by (kind, matrix)."""
    records = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") in ("comm_invariance", "comm_topology"):
                records[(rec["kind"], rec["matrix"])] = rec
    if not records:
        sys.exit(f"{path}: no comm_invariance/comm_topology records")
    return records


def comm_mode(args):
    cand = load_comm_records(args.baseline)
    base = load_comm_records(args.candidate) if args.candidate else None

    failures = []
    topo = [r for (kind, _), r in sorted(cand.items()) if kind == "comm_topology"]
    if not topo:
        sys.exit("candidate has no comm_topology records")
    strict_decreases = 0
    for rec in topo:
        name = rec["matrix"]
        if rec["halo_bytes_node_aware"] != rec["halo_bytes_flat"]:
            failures.append(
                f"{name}: node-aware payload bytes "
                f"{rec['halo_bytes_node_aware']} != flat {rec['halo_bytes_flat']}")
        if rec["halo_intra_bytes"] + rec["halo_inter_bytes"] != rec["halo_bytes_flat"]:
            failures.append(
                f"{name}: intra {rec['halo_intra_bytes']} + inter "
                f"{rec['halo_inter_bytes']} != total {rec['halo_bytes_flat']}")
        if rec["halo_msgs_node_aware"] > rec["halo_msgs_flat"]:
            failures.append(
                f"{name}: node-aware messages {rec['halo_msgs_node_aware']} "
                f"exceed flat {rec['halo_msgs_flat']}")
        if rec["halo_msgs_node_aware"] < rec["halo_msgs_flat"]:
            strict_decreases += 1
    total_flat = sum(r["halo_msgs_flat"] for r in topo)
    total_na = sum(r["halo_msgs_node_aware"] for r in topo)
    print(f"wire messages: flat {total_flat} -> node-aware {total_na} "
          f"({pct_change(total_flat, total_na):+.1f}%), strict decrease on "
          f"{strict_decreases}/{len(topo)} matrices")
    if strict_decreases == 0:
        failures.append("node-aware aggregation never reduced a single "
                        "matrix's message count")

    if base is not None:
        for key, brec in sorted(base.items()):
            kind, name = key
            crec = cand.get(key)
            if crec is None:
                failures.append(f"{name}: {kind} record missing from candidate")
                continue
            if kind == "comm_invariance":
                d = pct_change(brec["halo_bytes_comm"], crec["halo_bytes_comm"])
                if d > args.max_comm_bytes_rise:
                    failures.append(
                        f"{name}: FSAIE-Comm halo bytes rose {d:.1f}% "
                        f"({brec['halo_bytes_comm']} -> "
                        f"{crec['halo_bytes_comm']}, > "
                        f"{args.max_comm_bytes_rise:.1f}% allowed)")
            else:
                if crec["halo_msgs_node_aware"] > brec["halo_msgs_node_aware"]:
                    failures.append(
                        f"{name}: node-aware messages rose "
                        f"{brec['halo_msgs_node_aware']} -> "
                        f"{crec['halo_msgs_node_aware']}")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(f"OK: comm contract holds on {len(topo)} matrices")
    return 1 if failures else 0


def load_kernels(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fsaic.bench.kernels/v1":
        sys.exit(f"{path}: not a fsaic.bench.kernels/v1 artifact "
                 f"(schema={doc.get('schema')!r})")
    return doc


def kernels_mode(args):
    cand = load_kernels(args.baseline)
    base = load_kernels(args.candidate) if args.candidate else None

    failures = []
    matrices = cand["matrices"]
    if not matrices:
        sys.exit("candidate has no per-matrix records")
    fast = 0
    for m in matrices:
        tag = ""
        if not m["bitwise_equal"]:
            failures.append(f"{m['name']}: SELL SpMV is not bit-identical "
                            "to the CSR reference")
            tag = "  BITWISE DIFF"
        if m["sell_speedup"] >= args.min_sell_speedup:
            fast += 1
        if m["padding_ratio"] > args.max_padding_ratio:
            failures.append(
                f"{m['name']}: padding ratio {m['padding_ratio']:.3f} exceeds "
                f"{args.max_padding_ratio:.3f}")
        print(f"{m['name']}: csr {m['csr_gflops']:.2f} -> sell "
              f"{m['sell_gflops']:.2f} GFLOP/s (x{m['sell_speedup']:.2f}), "
              f"padding {m['padding_ratio']:.3f}{tag}")
    need = args.min_fast_fraction * len(matrices)
    print(f"sell >= x{args.min_sell_speedup:.2f} on {fast}/{len(matrices)} "
          f"matrices (need {need:.1f})")
    if fast < need:
        failures.append(
            f"SELL reached x{args.min_sell_speedup:.2f} on only "
            f"{fast}/{len(matrices)} matrices "
            f"(need {args.min_fast_fraction:.0%})")

    sweeps = cand["sweeps"]
    print(f"fused CG sweep: x{sweeps['fused_speedup']:.2f} vs separate "
          f"(bitwise_equal={sweeps['bitwise_equal']})")
    if not sweeps["bitwise_equal"]:
        failures.append("fused CG sweep is not bit-identical to the "
                        "separate sweeps")
    if cand["summary"]["correctness_diffs"] != 0:
        failures.append(
            f"summary reports {cand['summary']['correctness_diffs']} "
            "correctness diffs")

    if base is not None:
        base_by_name = {m["name"]: m for m in base["matrices"]}
        for m in matrices:
            b = base_by_name.get(m["name"])
            if b is None:
                continue
            d = pct_change(b["sell_gflops"], m["sell_gflops"])
            if d < -args.max_gflops_drop:
                failures.append(
                    f"{m['name']}: SELL GFLOP/s dropped {-d:.1f}% "
                    f"({b['sell_gflops']:.2f} -> {m['sell_gflops']:.2f}, > "
                    f"{args.max_gflops_drop:.1f}% allowed)")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(f"OK: kernel contract holds on {len(matrices)} matrices")
    return 1 if failures else 0


def load_weakscale(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fsaic.bench.weakscale/v1":
        sys.exit(f"{path}: not a fsaic.bench.weakscale/v1 artifact "
                 f"(schema={doc.get('schema')!r})")
    return doc


def weakscale_mode(args):
    doc = load_weakscale(args.baseline)
    failures = []

    fixed = doc["fixed"]["cells"]
    if not fixed:
        sys.exit("candidate has no fixed-series cells")
    fingerprints = {c["fingerprint"] for c in fixed}
    if len(fingerprints) != 1:
        failures.append(
            f"fixed series: {len(fingerprints)} distinct operator "
            f"fingerprints across rank counts / comm schemes "
            f"({sorted(fingerprints)}) — generation is not deterministic")
    for c in fixed:
        label = f"fixed ranks={c['ranks']} comm={c['comm']}"
        if c["rows"] < args.min_rows:
            failures.append(f"{label}: only {c['rows']} rows "
                            f"(need >= {args.min_rows})")
        if c["balance"] > args.max_balance:
            failures.append(f"{label}: nnz balance {c['balance']:.3f} exceeds "
                            f"{args.max_balance:.3f}")
        if c["halo_intra_bytes"] + c["halo_inter_bytes"] != c["halo_bytes"]:
            failures.append(
                f"{label}: intra {c['halo_intra_bytes']} + inter "
                f"{c['halo_inter_bytes']} != total {c['halo_bytes']}")
    by_ranks = {}
    for c in fixed:
        by_ranks.setdefault(c["ranks"], {})[c["comm"]] = c
    for ranks, cells in sorted(by_ranks.items()):
        flat, na = cells.get("flat"), cells.get("node-aware")
        if flat is None or na is None:
            failures.append(f"fixed ranks={ranks}: missing a comm scheme")
            continue
        if flat["residual_digest"] != na["residual_digest"]:
            failures.append(
                f"fixed ranks={ranks}: node-aware residual digest "
                f"{na['residual_digest']} != flat {flat['residual_digest']} "
                "— the comm scheme changed the arithmetic")
        if na["halo_bytes"] != flat["halo_bytes"]:
            failures.append(
                f"fixed ranks={ranks}: node-aware payload bytes "
                f"{na['halo_bytes']} != flat {flat['halo_bytes']}")
        print(f"fixed ranks={ranks}: fingerprint {flat['fingerprint']}, "
              f"digest {flat['residual_digest']}, halo {flat['halo_bytes']} B "
              f"(node-aware intra {na['halo_intra_bytes']} / inter "
              f"{na['halo_inter_bytes']})")

    weak = doc["weak"]["cells"]
    if not weak:
        sys.exit("candidate has no weak-series cells")
    halo_levels = {c["max_rank_halo_recv_bytes"] for c in weak}
    if len(halo_levels) != 1:
        failures.append(
            f"weak series: max per-rank halo recv bytes vary across rank "
            f"counts ({sorted(halo_levels)}) — halo volume is not flat at "
            "fixed rows/rank")
    full_added = 0
    for c in weak:
        label = f"weak ranks={c['ranks']}"
        if c["new_comm_cols_comm_aware"] != 0:
            failures.append(
                f"{label}: comm-aware extension admitted "
                f"{c['new_comm_cols_comm_aware']} new communication columns "
                "(must be exactly 0)")
        full_added += c["new_comm_cols_full_halo"]
        print(f"{label}: {c['rows']} rows, halo recv "
              f"{c['max_rank_halo_recv_bytes']} B/rank, new comm cols "
              f"comm-aware {c['new_comm_cols_comm_aware']} / full-halo "
              f"{c['new_comm_cols_full_halo']}")
    if full_added == 0:
        failures.append(
            "weak series: the full-halo strawman never admitted a new "
            "communication column — the neutrality check has no teeth")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(f"OK: weak-scaling contract holds on {len(fixed)} fixed + "
              f"{len(weak)} weak cells")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--mode", choices=("serve", "comm", "kernels", "weakscale"),
                    default="serve",
                    help="serve: compare two BENCH_serve.json artifacts; "
                         "comm: enforce the comm contract on a "
                         "comm_invariance JSONL report (first positional is "
                         "the candidate, optional second a baseline); "
                         "kernels: enforce the kernel-backend contract on a "
                         "BENCH_kernels.json artifact (first positional is "
                         "the candidate, optional second a baseline); "
                         "weakscale: enforce the workload-generation "
                         "contract on a BENCH_weakscale.json artifact")
    ap.add_argument("--max-rps-drop", type=float, default=20.0,
                    help="fail when throughput drops more than PCT (default 20)")
    ap.add_argument("--max-p99-rise", type=float, default=20.0,
                    help="fail when p99 total latency rises more than PCT "
                         "(default 20)")
    ap.add_argument("--max-comm-bytes-rise", type=float, default=0.0,
                    help="comm mode: fail when a matrix's FSAIE-Comm halo "
                         "bytes rise more than PCT vs baseline (default 0)")
    ap.add_argument("--min-sell-speedup", type=float, default=1.2,
                    help="kernels mode: SELL-vs-CSR speedup a matrix must "
                         "reach to count as fast (default 1.2)")
    ap.add_argument("--min-fast-fraction", type=float, default=0.5,
                    help="kernels mode: fraction of matrices that must be "
                         "fast (default 0.5)")
    ap.add_argument("--max-padding-ratio", type=float, default=1.25,
                    help="kernels mode: fail when a matrix's SELL padding "
                         "ratio exceeds this (default 1.25)")
    ap.add_argument("--max-gflops-drop", type=float, default=30.0,
                    help="kernels mode: fail when a matrix's SELL GFLOP/s "
                         "drop more than PCT vs baseline (default 30)")
    ap.add_argument("--min-rows", type=int, default=1000000,
                    help="weakscale mode: minimum rows of the fixed-series "
                         "operator (default 1000000)")
    ap.add_argument("--max-balance", type=float, default=1.05,
                    help="weakscale mode: max per-rank nnz balance of a "
                         "fixed-series cell (default 1.05)")
    args = ap.parse_args()

    if args.mode == "comm":
        return comm_mode(args)
    if args.mode == "kernels":
        return kernels_mode(args)
    if args.mode == "weakscale":
        return weakscale_mode(args)
    if args.candidate is None:
        # Single positional: it is the candidate, compared against the
        # committed in-tree baseline.
        args.baseline, args.candidate = DEFAULT_SERVE_BASELINE, args.baseline
        print(f"baseline: {args.baseline} (committed default)")

    base = load(args.baseline)
    cand = load(args.candidate)

    same_workload = base["digests"]["workload"] == cand["digests"]["workload"]
    if not same_workload:
        print("note: workload digests differ "
              f"({base['digests']['workload']} vs "
              f"{cand['digests']['workload']}); latency/throughput deltas "
              "are informational only")

    rps_base = base["throughput_rps"]
    rps_cand = cand["throughput_rps"]
    rps_delta = pct_change(rps_base, rps_cand)
    print(f"throughput: {rps_base:.2f} -> {rps_cand:.2f} req/s "
          f"({rps_delta:+.1f}%)")

    p99_delta = 0.0
    for stage in ("queue", "setup", "solve", "total"):
        b = base["latency"][stage]
        c = cand["latency"][stage]
        for q in ("p50_us", "p95_us", "p99_us"):
            d = pct_change(b[q], c[q])
            print(f"latency.{stage}.{q[:-3]}: {b[q]:.0f} -> {c[q]:.0f} us "
                  f"({d:+.1f}%)")
            if stage == "total" and q == "p99_us":
                p99_delta = d

    hb, cb = base["cache"], cand["cache"]
    print(f"cache hit rate: {hb['hit_rate']:.2f} -> {cb['hit_rate']:.2f}")
    rb, rc = base["requests"], cand["requests"]

    def rejected(r):
        # rejected_predicted appeared with the SLO-aware scheduler; older
        # artifacts predate it.
        return (r["rejected_deadline"] + r["rejected_queue_full"]
                + r.get("rejected_predicted", 0))

    print(f"completed: {rb['completed']} -> {rc['completed']}; rejected: "
          f"{rejected(rb)} -> {rejected(rc)}")

    failures = []
    if same_workload:
        if rps_delta < -args.max_rps_drop:
            failures.append(
                f"throughput dropped {-rps_delta:.1f}% "
                f"(> {args.max_rps_drop:.1f}% allowed)")
        if p99_delta > args.max_p99_rise:
            failures.append(
                f"p99 total latency rose {p99_delta:.1f}% "
                f"(> {args.max_p99_rise:.1f}% allowed)")
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("OK: candidate within thresholds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
