// Table 4 reproduction: influence of the hybrid (threads-per-rank)
// configuration. For each CPUs/process value the suite is re-distributed so
// the total core count stays tied to the workload (16k nnz per core in the
// paper; scaled here), the rank-level L1 capacity grows with the thread
// count, and FSAIE / FSAIE-Comm are compared against FSAI with the best
// dynamic filter. FLOPs increase is measured without filtering, as in the
// paper.
#include "bench_common.hpp"

namespace {

using namespace fsaic;
using namespace fsaic::bench;

struct HybridRow {
  double iter_dec_fsaie = 0.0;
  double iter_dec_comm = 0.0;
  double time_dec_fsaie = 0.0;
  double time_dec_comm = 0.0;
  double flops_inc_fsaie = 0.0;
  double flops_inc_comm = 0.0;
  int count = 0;
};

}  // namespace

int main() {
  print_header("Table 4 — hybrid configurations, Skylake",
               "HPDC'22 Table 4 (iter dec / time dec / FLOPs inc, "
               "FSAIE/FSAIE-Comm)");
  // Total cores fixed by workload: nnz / nnz_per_core; ranks = cores / t.
  const offset_t nnz_per_core = 3000;
  TextTable table({"CPU/Process", "Iter.dec%", "Time.dec%", "FLOPs.inc%",
                   "paper.Iter.dec%", "paper.Time.dec%"});
  const std::vector<std::pair<int, std::string>> paper_ref{
      {1, "13.76/19.80  10.59/16.43"},
      {2, "16.31/20.91  13.39/17.38"},
      {4, "17.44/20.88  15.02/18.21"},
      {8, "17.87/20.65  14.56/17.86"},
      {48, "19.54/20.93  17.83/19.29"}};

  for (const auto& [threads, paper] : paper_ref) {
    ExperimentConfig cfg;
    cfg.machine = machine_skylake();
    cfg.threads_per_rank = threads;
    cfg.nnz_per_rank = nnz_per_core * threads;
    cfg.min_ranks = 2;
    cfg.max_ranks = 32;
    ExperimentRunner runner(cfg);

    HybridRow row;
    for (const auto& entry : small_suite()) {
      const auto& base = runner.baseline(entry);
      // Best dynamic filter per matrix, as the paper does.
      const RunRecord* best_fsaie = nullptr;
      const RunRecord* best_comm = nullptr;
      for (value_t f : kFilters) {
        const auto& e1 = runner.run(
            entry, {ExtensionMode::LocalOnly, FilterStrategy::Dynamic, f});
        const auto& e2 = runner.run(
            entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, f});
        if (best_fsaie == nullptr || e1.modeled_time < best_fsaie->modeled_time) {
          best_fsaie = &e1;
        }
        if (best_comm == nullptr || e2.modeled_time < best_comm->modeled_time) {
          best_comm = &e2;
        }
      }
      // FLOPs (GFLOP/s in the precond SpMVs) without filtering.
      const auto& raw_fsaie = runner.run(
          entry, {ExtensionMode::LocalOnly, FilterStrategy::Static, 0.0});
      const auto& raw_comm = runner.run(
          entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});

      row.iter_dec_fsaie += improvement_over(base, *best_fsaie).iterations_pct;
      row.iter_dec_comm += improvement_over(base, *best_comm).iterations_pct;
      row.time_dec_fsaie += improvement_over(base, *best_fsaie).time_pct;
      row.time_dec_comm += improvement_over(base, *best_comm).time_pct;
      row.flops_inc_fsaie +=
          100.0 * (raw_fsaie.precond_gflops - base.precond_gflops) /
          base.precond_gflops;
      row.flops_inc_comm +=
          100.0 * (raw_comm.precond_gflops - base.precond_gflops) /
          base.precond_gflops;
      ++row.count;
    }
    const double n = row.count;
    table.add_row({std::to_string(threads),
                   strformat("%.2f/%.2f", row.iter_dec_fsaie / n,
                             row.iter_dec_comm / n),
                   strformat("%.2f/%.2f", row.time_dec_fsaie / n,
                             row.time_dec_comm / n),
                   strformat("%.2f/%.2f", row.flops_inc_fsaie / n,
                             row.flops_inc_comm / n),
                   paper.substr(0, 12), paper.substr(13)});
  }
  table.print(std::cout);
  return 0;
}
