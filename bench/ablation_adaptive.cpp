// Dynamic-vs-static pattern ablation (the trade-off the paper's related-work
// section describes): adaptive per-row pattern growth is numerically
// stronger per nonzero than a-priori patterns, but it is oblivious to the
// decomposition — its entries land wherever the residual points, including
// halo columns that *enlarge the communication scheme*. FSAIE-Comm takes the
// opposite deal: cheaper, communication-neutral entries.
#include "bench_common.hpp"

#include "core/adaptive.hpp"
#include "sparse/ops.hpp"
#include "solver/pcg.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — adaptive (dynamic) patterns vs FSAI / FSAIE-Comm",
               "extends HPDC'22 Section 6 (static vs dynamic patterns)");

  const Machine machine = machine_a64fx();
  const CostModel cost(machine, {.threads_per_rank = 8});

  for (const char* name : {"thermal2", "Fault_639"}) {
    const auto& entry = suite_entry(name);
    ExperimentConfig cfg;
    cfg.machine = machine;
    ExperimentRunner runner(cfg);
    const auto& sys = runner.prepare(entry);

    TextTable table({"pattern", "G.nnz", "iters", "halo.B(G+GT)",
                     "modeled.time"});
    const auto run_pattern = [&](const std::string& label,
                                 const SparsityPattern& p) {
      const auto g = compute_fsai_factor(sys.matrix, p);
      const DistCsr g_dist = DistCsr::distribute(g, sys.layout);
      const DistCsr gt_dist = DistCsr::distribute(transpose(g), sys.layout);
      const FactorizedPreconditioner precond(g_dist, gt_dist, label);
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, precond, cfg.solve);
      const double t =
          r.iterations *
          cost.pcg_iteration_cost(sys.a_dist, g_dist, gt_dist).total();
      table.add_row({label, std::to_string(g.nnz()),
                     std::to_string(r.iterations) + (r.converged ? "" : "*"),
                     std::to_string(g_dist.halo_update_bytes() +
                                    gt_dist.halo_update_bytes()),
                     sci2(t)});
    };

    run_pattern("fsai (lower(A))", fsai_base_pattern(sys.matrix, 1, 0.0));
    {
      FsaiOptions opts;
      opts.extension = ExtensionMode::CommAware;
      opts.cache_line_bytes = machine.l1.line_bytes;
      opts.filter = 0.01;
      opts.filter_strategy = FilterStrategy::Dynamic;
      const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      run_pattern("fsaie-comm d0.01", build.final_pattern);
    }
    for (const int steps : {2, 4, 6}) {
      run_pattern(strformat("adaptive s=%d", steps),
                  adaptive_fsai_pattern(
                      sys.matrix, {.growth_steps = steps, .entries_per_step = 2}));
    }

    std::cout << entry.name << " (" << sys.matrix.rows() << " rows, "
              << sys.nranks << " ranks):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading guide: adaptive patterns buy iterations per nonzero "
               "but grow halo traffic with the growth budget; FSAIE-Comm "
               "keeps the FSAI halo bytes exactly.\n";
  return 0;
}
