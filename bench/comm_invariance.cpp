// Section 3 claim, verified byte-exactly: FSAIE-Comm extensions leave the
// halo-update communication scheme of both G x and G^T x untouched, while a
// naive halo extension (FSAIE-Full, same cache-line rule without the
// admission test) inflates traffic. For every suite matrix this bench
// reports the bytes and messages of one halo update of G and G^T under each
// method, plus the number of extension entries gained in the halo.
#include "bench_common.hpp"

#include "dist/comm_scheme.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Communication invariance — FSAI vs FSAIE vs FSAIE-Comm vs naive",
               "HPDC'22 Section 3 ('the communication cost is unvaried')");

  ExperimentConfig cfg;
  cfg.machine = machine_a64fx();  // 256 B lines: widest extensions
  ExperimentRunner runner(cfg);
  const auto report = attach_env_report(runner);

  TextTable table({"Matrix", "Ranks", "halo.B.fsai", "halo.B.comm",
                   "halo.B.naive", "msgs.fsai", "msgs.comm", "msgs.naive",
                   "halo.added.comm", "halo.added.naive"});
  int invariant = 0;
  int naive_grew = 0;
  for (const auto& entry : small_suite()) {
    const auto& sys = runner.prepare(entry);
    FsaiOptions opts;
    opts.cache_line_bytes = cfg.machine.l1.line_bytes;
    opts.extension = ExtensionMode::None;
    const auto fsai = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    opts.extension = ExtensionMode::CommAware;
    const auto comm = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    opts.extension = ExtensionMode::FullHalo;
    const auto naive = build_fsai_preconditioner(sys.matrix, sys.layout, opts);

    const auto total_bytes = [](const FsaiBuildResult& b) {
      return b.g_dist.halo_update_bytes() + b.gt_dist.halo_update_bytes();
    };
    const auto total_msgs = [](const FsaiBuildResult& b) {
      return b.g_dist.halo_update_messages() + b.gt_dist.halo_update_messages();
    };
    const ExtensionResult ext_comm =
        extend_pattern(fsai.base_pattern, sys.layout, opts.cache_line_bytes,
                       ExtensionMode::CommAware);
    const ExtensionResult ext_naive =
        extend_pattern(fsai.base_pattern, sys.layout, opts.cache_line_bytes,
                       ExtensionMode::FullHalo);

    if (total_bytes(comm) == total_bytes(fsai) &&
        total_msgs(comm) == total_msgs(fsai)) {
      ++invariant;
    }
    if (total_bytes(naive) > total_bytes(fsai)) ++naive_grew;

    table.add_row({entry.name, std::to_string(sys.nranks),
                   std::to_string(total_bytes(fsai)),
                   std::to_string(total_bytes(comm)),
                   std::to_string(total_bytes(naive)),
                   std::to_string(total_msgs(fsai)),
                   std::to_string(total_msgs(comm)),
                   std::to_string(total_msgs(naive)),
                   std::to_string(ext_comm.halo_added),
                   std::to_string(ext_naive.halo_added)});

    // This bench never calls runner.run(), so it feeds the FSAIC_REPORT
    // writer its own per-matrix invariance record.
    if (report != nullptr) {
      JsonValue rec = JsonValue::object();
      rec["kind"] = "comm_invariance";
      rec["matrix"] = entry.name;
      rec["ranks"] = sys.nranks;
      rec["halo_bytes_fsai"] = total_bytes(fsai);
      rec["halo_bytes_comm"] = total_bytes(comm);
      rec["halo_bytes_naive"] = total_bytes(naive);
      rec["halo_msgs_fsai"] = total_msgs(fsai);
      rec["halo_msgs_comm"] = total_msgs(comm);
      rec["halo_msgs_naive"] = total_msgs(naive);
      rec["halo_added_comm"] = ext_comm.halo_added;
      rec["halo_added_naive"] = ext_naive.halo_added;
      report->write(rec);

      // Companion record: the same scheme realized over a two-level
      // topology. Payload bytes are invariant by construction (aggregation
      // merges messages, never duplicates coefficients); the wire message
      // count drops whenever several ranks of one node talk to the same
      // peer node. CI gates on both properties.
      const int rpn = 4;
      const CommConfig node_cfg{CommMode::NodeAware, rpn};
      const NodeTopology topo = node_cfg.topology(sys.nranks);
      // Pin both realizations explicitly so the record is meaningful even
      // when FSAIC_COMM overrides the process default.
      DistCsr g_flat = comm.g_dist;
      DistCsr gt_flat = comm.gt_dist;
      g_flat.use_comm(CommConfig{});
      gt_flat.use_comm(CommConfig{});
      DistCsr g_na = comm.g_dist;
      DistCsr gt_na = comm.gt_dist;
      g_na.use_comm(node_cfg);
      gt_na.use_comm(node_cfg);
      const auto level_bytes = [&](const DistCsr& d, CommLevel level) {
        std::int64_t bytes = 0;
        for (rank_t p = 0; p < d.nranks(); ++p) {
          for (const auto& nb : d.block(p).recv) {
            if (topo.level_of(nb.rank, p) == level) {
              bytes += static_cast<std::int64_t>(nb.gids.size()) *
                       static_cast<std::int64_t>(sizeof(value_t));
            }
          }
        }
        return bytes;
      };
      JsonValue topo_rec = JsonValue::object();
      topo_rec["kind"] = "comm_topology";
      topo_rec["matrix"] = entry.name;
      topo_rec["ranks"] = sys.nranks;
      topo_rec["ranks_per_node"] = rpn;
      topo_rec["halo_bytes_flat"] =
          g_flat.halo_update_bytes() + gt_flat.halo_update_bytes();
      topo_rec["halo_bytes_node_aware"] =
          g_na.halo_update_bytes() + gt_na.halo_update_bytes();
      topo_rec["halo_msgs_flat"] =
          g_flat.halo_update_messages() + gt_flat.halo_update_messages();
      topo_rec["halo_msgs_node_aware"] =
          g_na.halo_update_messages() + gt_na.halo_update_messages();
      topo_rec["halo_intra_msgs"] = g_na.halo_update_intra_messages() +
                                    gt_na.halo_update_intra_messages();
      topo_rec["halo_inter_msgs"] = g_na.halo_update_inter_messages() +
                                    gt_na.halo_update_inter_messages();
      topo_rec["halo_intra_bytes"] =
          level_bytes(g_na, CommLevel::Intra) +
          level_bytes(gt_na, CommLevel::Intra);
      topo_rec["halo_inter_bytes"] =
          level_bytes(g_na, CommLevel::Inter) +
          level_bytes(gt_na, CommLevel::Inter);
      report->write(topo_rec);
    }
  }
  table.print(std::cout);
  std::cout << "\nFSAIE-Comm kept the scheme byte-identical on " << invariant
            << "/39 matrices; the naive extension grew traffic on "
            << naive_grew << "/39.\n";
  return 0;
}
