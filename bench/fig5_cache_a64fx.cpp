// Figure 5 reproduction (A64FX): same panels as Figure 3 on the 256 B-line,
// 64 KiB-L1 machine, where extensions are 4x wider and the miss-per-nnz
// reduction is correspondingly larger.
#include "bench_common.hpp"

int main() {
  fsaic::bench::run_cache_figure(
      fsaic::machine_a64fx(),
      "Figure 5 — cache misses & GFLOP/s histograms, A64FX",
      "HPDC'22 Fig. 5 (FSAI vs unfiltered FSAIE-Comm; paper: ~7.5% FLOP/s "
      "increase)");
  return 0;
}
