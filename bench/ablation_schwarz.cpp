// Overlap-vs-extension ablation: two opposite ways to buy iterations.
// Additive Schwarz grows *domains* — every overlap level adds iteration
// quality AND per-application communication (fetch + return of the overlap
// coefficients). FSAIE-Comm grows the *pattern* — iteration quality at
// byte-for-byte the communication of plain FSAI. This bench sweeps the
// Schwarz overlap next to the FSAI family on one system and prints the
// quality/traffic frontier.
#include "bench_common.hpp"

#include "solver/pcg.hpp"
#include "solver/schwarz.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — Schwarz overlap vs FSAIE-Comm extension",
               "extends HPDC'22: two opposite quality/communication trades");

  const Machine machine = machine_a64fx();
  const CostModel cost(machine, {.threads_per_rank = 8});

  for (const char* name : {"thermal2", "af_shell7"}) {
    const auto& entry = suite_entry(name);
    ExperimentConfig cfg;
    cfg.machine = machine;
    ExperimentRunner runner(cfg);
    const auto& sys = runner.prepare(entry);

    TextTable table({"preconditioner", "iters", "apply.halo.B", "apply.halo.msgs",
                     "max.block.rows"});
    const auto add_row = [&](const std::string& label, const SolveResult& r,
                             std::int64_t halo_bytes, std::int64_t halo_msgs,
                             index_t block_rows) {
      table.add_row({label,
                     std::to_string(r.iterations) + (r.converged ? "" : "*"),
                     std::to_string(halo_bytes), std::to_string(halo_msgs),
                     std::to_string(block_rows)});
    };

    for (const int overlap : {0, 1, 2, 4}) {
      const SchwarzPreconditioner ras(sys.matrix, sys.layout, overlap);
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, ras, cfg.solve);
      add_row(strformat("schwarz ovl=%d", overlap), r, ras.apply_halo_bytes(),
              ras.apply_halo_messages(), ras.max_extended_rows());
    }
    for (const auto mode : {ExtensionMode::None, ExtensionMode::CommAware}) {
      FsaiOptions opts;
      opts.extension = mode;
      opts.cache_line_bytes = machine.l1.line_bytes;
      opts.filter = mode == ExtensionMode::None ? 0.0 : 0.01;
      opts.filter_strategy = FilterStrategy::Dynamic;
      const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const auto precond = make_factorized_preconditioner(build, "m");
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, *precond, cfg.solve);
      index_t max_rows = 0;
      for (rank_t p = 0; p < sys.nranks; ++p) {
        max_rows = std::max(max_rows, sys.layout.local_size(p));
      }
      add_row(to_string(mode), r,
              build.g_dist.halo_update_bytes() + build.gt_dist.halo_update_bytes(),
              build.g_dist.halo_update_messages() +
                  build.gt_dist.halo_update_messages(),
              max_rows);
    }

    std::cout << entry.name << " (" << sys.matrix.rows() << " rows, "
              << sys.nranks << " ranks):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading guide: every Schwarz overlap level adds bytes AND "
               "messages per application; FSAIE-Comm improves over FSAI at "
               "constant traffic.\n";
  return 0;
}
