// Figure 2 reproduction: per-matrix time decrease of FSAIE-Comm vs FSAI on
// the Skylake model, for the best dynamic Filter (blue bars) and Filter 0.01
// (orange bars).
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Figure 2 — per-matrix time decrease, Skylake",
               "HPDC'22 Fig. 2 (best Filter + Filter 0.01 bars)");
  ExperimentConfig cfg;
  cfg.machine = machine_skylake();
  ExperimentRunner runner(cfg);
  print_permatrix_figure(runner, small_suite(), 0.01);
  return 0;
}
