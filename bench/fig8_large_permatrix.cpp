// Figure 8 reproduction: per-matrix time decrease of FSAIE-Comm vs FSAI on
// the Zen 2 model for the large suite, best dynamic Filter and Filter 0.01.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Figure 8 — per-matrix time decrease, large suite, Zen 2",
               "HPDC'22 Fig. 8 (best Filter + Filter 0.01 bars)");
  ExperimentConfig cfg;
  cfg.machine = machine_zen2();
  cfg.nnz_per_rank = 8000;
  cfg.max_ranks = 64;
  ExperimentRunner runner(cfg);
  print_permatrix_figure(runner, large_suite(), 0.01);
  return 0;
}
