// FSAI setup-speed microbenchmark: times the gather-based Gram assembly
// against the historic entrywise at() path over sparsity levels 1-3 (where
// pattern rows widen and the m^2 log(nnz) binary searches dominate), and the
// incremental refactorization against a full step-5 recompute on filtered
// FSAIE-Comm builds. Both comparisons also assert the results are
// bit-identical, so the bench doubles as a coarse differential check.
//
// FSAIC_REPORT=path.jsonl appends machine-readable records:
//   kind "setup_speed":    per (matrix, level) assembly timing + speedup
//   kind "setup_refactor": per filtered build row reuse + timing
// FSAIC_SETUP_BENCH_FAST=1 shrinks the grids and repetitions (sanitizer CI).
#include "bench_common.hpp"

#include <chrono>

#include "matgen/generators.hpp"

namespace {

using namespace fsaic;

double median_seconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool factors_identical(const CsrMatrix& x, const CsrMatrix& y) {
  if (x.rows() != y.rows() || x.nnz() != y.nnz()) return false;
  for (index_t i = 0; i < x.rows(); ++i) {
    const auto xc = x.row_cols(i);
    const auto yc = y.row_cols(i);
    const auto xv = x.row_vals(i);
    const auto yv = y.row_vals(i);
    if (!std::equal(xc.begin(), xc.end(), yc.begin(), yc.end())) return false;
    if (!std::equal(xv.begin(), xv.end(), yv.begin(), yv.end())) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace fsaic::bench;
  using clock = std::chrono::steady_clock;
  print_header("FSAI setup speed — gather assembly and incremental refactorization",
               "setup-phase optimizations (gather Gram assembly, row reuse)");

  const bool fast = []() {
    const char* v = std::getenv("FSAIC_SETUP_BENCH_FAST");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  const int reps = fast ? 1 : 3;

  std::unique_ptr<RunReportWriter> report;
  if (const char* path = std::getenv("FSAIC_REPORT");
      path != nullptr && *path != '\0') {
    report = std::make_unique<RunReportWriter>(std::string(path));
  }

  struct Case {
    std::string name;
    CsrMatrix a;
  };
  std::vector<Case> cases;
  cases.push_back({"poisson2d", fast ? poisson2d(20, 20) : poisson2d(40, 40)});
  cases.push_back({"stencil27", fast ? stencil27(6, 6, 6) : stencil27(10, 10, 10)});

  // Part 1: Gram assembly, reference vs gather, on widening patterns.
  TextTable assembly({"Matrix", "Level", "Rows", "Pattern.nnz", "ref.s",
                      "gather.s", "speedup", "identical"});
  int mismatches = 0;
  for (const auto& c : cases) {
    for (int level = 1; level <= 3; ++level) {
      const SparsityPattern s = fsai_base_pattern(c.a, level, 0.0);
      FsaiComputeOptions ref_opts;
      ref_opts.assembly = GramAssembly::Reference;
      FsaiComputeOptions gather_opts;
      gather_opts.assembly = GramAssembly::Gather;

      std::vector<double> ref_samples;
      std::vector<double> gather_samples;
      CsrMatrix g_ref;
      CsrMatrix g_gather;
      FsaiFactorStats gather_stats;
      for (int rep = 0; rep < reps; ++rep) {
        auto t0 = clock::now();
        g_ref = compute_fsai_factor(c.a, s, nullptr, ref_opts);
        auto t1 = clock::now();
        g_gather = compute_fsai_factor(c.a, s, &gather_stats, gather_opts);
        auto t2 = clock::now();
        ref_samples.push_back(std::chrono::duration<double>(t1 - t0).count());
        gather_samples.push_back(std::chrono::duration<double>(t2 - t1).count());
      }
      const double ref_s = median_seconds(ref_samples);
      const double gather_s = median_seconds(gather_samples);
      const double speedup = gather_s > 0.0 ? ref_s / gather_s : 0.0;
      const bool identical = factors_identical(g_ref, g_gather);
      if (!identical) ++mismatches;

      assembly.add_row({c.name, std::to_string(level),
                        std::to_string(c.a.rows()),
                        std::to_string(s.nnz()), sci2(ref_s), sci2(gather_s),
                        strformat("%.2fx", speedup),
                        identical ? "yes" : "NO"});
      if (report != nullptr) {
        JsonValue rec = JsonValue::object();
        rec["kind"] = "setup_speed";
        rec["matrix"] = c.name;
        rec["level"] = level;
        rec["rows"] = c.a.rows();
        rec["pattern_nnz"] = s.nnz();
        rec["ref_assemble_s"] = ref_s;
        rec["gather_assemble_s"] = gather_s;
        rec["speedup"] = speedup;
        rec["identical"] = identical;
        rec["gram_entries_gathered"] = gather_stats.gram_entries_gathered;
        report->write(rec);
      }
    }
  }
  assembly.print(std::cout);

  // Part 2: filtered FSAIE-Comm builds, full step-5 recompute vs incremental
  // refactorization (256 B lines so the extension adds enough entries for
  // the filter to have something to remove).
  std::cout << "\nIncremental refactorization after filtering (comm-aware "
               "extension, filter 0.05, 256 B lines):\n";
  TextTable refactor({"Matrix", "Level", "rows.solved.full", "rows.solved.incr",
                      "rows.reused", "full.s", "incr.s", "identical"});
  for (const auto& c : cases) {
    for (int level = 1; level <= 2; ++level) {
      const Layout layout = Layout::blocked(c.a.rows(), 4);
      FsaiOptions opts;
      opts.sparsity_level = level;
      opts.extension = ExtensionMode::CommAware;
      opts.cache_line_bytes = 256;
      opts.filter = 0.05;
      opts.filter_strategy = FilterStrategy::Static;

      opts.incremental_refactor = false;
      auto t0 = clock::now();
      const FsaiBuildResult full =
          build_fsai_preconditioner(c.a, layout, opts);
      auto t1 = clock::now();
      opts.incremental_refactor = true;
      const FsaiBuildResult incr =
          build_fsai_preconditioner(c.a, layout, opts);
      auto t2 = clock::now();
      const double full_s = std::chrono::duration<double>(t1 - t0).count();
      const double incr_s = std::chrono::duration<double>(t2 - t1).count();
      const bool identical = factors_identical(full.g, incr.g);
      if (!identical) ++mismatches;

      refactor.add_row(
          {c.name, std::to_string(level),
           std::to_string(full.factor_stats.rows_solved),
           std::to_string(incr.factor_stats.rows_solved),
           std::to_string(incr.factor_stats.rows_reused), sci2(full_s),
           sci2(incr_s), identical ? "yes" : "NO"});
      if (report != nullptr) {
        JsonValue rec = JsonValue::object();
        rec["kind"] = "setup_refactor";
        rec["matrix"] = c.name;
        rec["level"] = level;
        rec["rows"] = c.a.rows();
        rec["rows_solved_full"] = full.factor_stats.rows_solved;
        rec["rows_solved_incr"] = incr.factor_stats.rows_solved;
        rec["rows_reused"] = incr.factor_stats.rows_reused;
        rec["full_s"] = full_s;
        rec["incr_s"] = incr_s;
        rec["identical"] = identical;
        report->write(rec);
      }
    }
  }
  refactor.print(std::cout);

  if (report != nullptr) {
    std::cout << "\nreport: " << report->records_written() << " records -> "
              << std::getenv("FSAIC_REPORT") << "\n";
  }
  if (mismatches > 0) {
    std::cout << "\nERROR: " << mismatches
              << " configurations produced non-identical factors\n";
    return 1;
  }
  return 0;
}
