// Weak-scaling study over rank-local generated operators (see
// docs/workload-generation.md). Emits BENCH_weakscale.json, gated in CI by
// tools/bench_diff.py --mode weakscale.
//
// Two series:
//
//  * fixed: one ~1M-row stencil operator generated at several rank counts,
//    each under the flat and the node-aware comm scheme. The artifact
//    records, per cell, the operator's content fingerprint (must be
//    identical everywhere — the generator's determinism contract), an
//    FNV-1a digest of the Jacobi-CG residual history (flat and node-aware
//    must match bit-exactly per rank count), the intra/inter byte split of
//    the solve (must sum to the flat total), and the per-rank nnz balance.
//    No global matrix is materialized anywhere in this series.
//
//  * weak: fixed rows/rank with the rank count growing. The plane size is
//    deliberately not a multiple of the cache-line width, so the naive
//    full-halo pattern extension must admit new communication columns while
//    the communication-aware rule admits exactly zero — the paper's central
//    claim, now checked at weak-scaling sizes. The artifact also records
//    the maximum per-rank halo recv bytes, which must stay exactly flat
//    (+-0%) as ranks grow at fixed rows/rank.
//
// Environment knobs:
//   FSAIC_WEAKSCALE_OUT             artifact path (default BENCH_weakscale.json)
//   FSAIC_WEAKSCALE_MAX_ITERATIONS  CG iteration budget per solve (default 50)
//   FSAIC_WEAKSCALE_FIXED_SPEC      override the fixed-series workload spec
//   FSAIC_WEAKSCALE_WEAK_SPEC       override the weak-series workload spec
#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/pattern_extend.hpp"
#include "dist/comm_scheme.hpp"
#include "dist/dist_csr.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "sparse/fingerprint.hpp"
#include "wgen/wgen.hpp"

namespace {

using namespace fsaic;

std::string env_string(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : v;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::atoi(v);
}

std::uint64_t history_digest(const SolveResult& r) {
  Fnv1a64Stream h;
  h.update(r.residual_history.data(),
           r.residual_history.size() * sizeof(value_t));
  return h.digest();
}

std::int64_t max_rank_halo_recv_bytes(const DistCsr& d) {
  std::int64_t best = 0;
  for (rank_t p = 0; p < d.nranks(); ++p) {
    std::int64_t bytes = 0;
    for (const auto& nb : d.block(p).recv) {
      bytes += static_cast<std::int64_t>(nb.gids.size()) *
               static_cast<std::int64_t>(sizeof(value_t));
    }
    best = std::max(best, bytes);
  }
  return best;
}

/// Per rank, the sorted set of off-rank vector coefficients it must receive
/// to apply both S x and S^T x under `layout`: entry (i, j) with different
/// owners makes owner(i) receive x_j (for S x) and owner(j) receive x_i
/// (for S^T x). Comparing this set before/after a pattern extension counts
/// exactly the *new* communication columns the extension would cost.
std::vector<std::vector<index_t>> comm_needs(const SparsityPattern& pat,
                                             const Layout& layout) {
  std::vector<std::vector<index_t>> need(
      static_cast<std::size_t>(layout.nranks()));
  for (index_t i = 0; i < pat.rows(); ++i) {
    const rank_t pi = layout.owner(i);
    for (const index_t j : pat.row(i)) {
      const rank_t pj = layout.owner(j);
      if (pi == pj) continue;
      need[static_cast<std::size_t>(pi)].push_back(j);
      need[static_cast<std::size_t>(pj)].push_back(i);
    }
  }
  for (auto& v : need) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return need;
}

std::int64_t new_comm_cols(const std::vector<std::vector<index_t>>& base,
                           const std::vector<std::vector<index_t>>& ext) {
  std::int64_t added = 0;
  for (std::size_t p = 0; p < base.size(); ++p) {
    std::vector<index_t> fresh;
    std::set_difference(ext[p].begin(), ext[p].end(), base[p].begin(),
                        base[p].end(), std::back_inserter(fresh));
    added += static_cast<std::int64_t>(fresh.size());
  }
  return added;
}

}  // namespace

int main() {
  using fsaic::bench::print_header;
  print_header("Weak scaling — rank-local generation, comm-neutral patterns",
               "HPDC'22 Section 3 at weak-scaling sizes (docs/workload-"
               "generation.md)");

  const std::string out_path =
      env_string("FSAIC_WEAKSCALE_OUT", "BENCH_weakscale.json");
  const int max_iterations = env_int("FSAIC_WEAKSCALE_MAX_ITERATIONS", 50);
  const std::string fixed_spec =
      env_string("FSAIC_WEAKSCALE_FIXED_SPEC", "stencil3d:nx=64,ny=64,nz=256");
  const std::string weak_spec = env_string(
      "FSAIC_WEAKSCALE_WEAK_SPEC", "stencil3d:nx=61,ny=61,rows_per_rank=59536");

  JsonValue doc = JsonValue::object();
  doc["schema"] = "fsaic.bench.weakscale/v1";

  // ---- fixed series: same operator, growing rank counts, both schemes ----
  JsonValue fixed = JsonValue::object();
  fixed["spec"] = fixed_spec;
  JsonValue fixed_cells = JsonValue::array();
  TextTable fixed_table({"ranks", "comm", "fingerprint", "balance", "iters",
                         "resid.digest", "halo.B", "intra.B", "inter.B"});
  for (const rank_t nranks : {1, 4, 16}) {
    for (const bool node_aware : {false, true}) {
      const int rpn = node_aware ? std::min<rank_t>(4, nranks) : 1;
      const CommConfig comm{node_aware ? CommMode::NodeAware : CommMode::Flat,
                            rpn};
      const wgen::ResolvedWorkload w = wgen::resolve_workload(
          wgen::parse_workload_spec(fixed_spec), nranks);
      wgen::WgenStats stats;
      const DistCsr a = wgen::generate_dist(w, nranks, comm, &stats);
      const MatrixFingerprint fp = fingerprint_rank_local(a);

      Rng rng(2022);
      std::vector<value_t> bg(static_cast<std::size_t>(w.rows));
      for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
      const DistVector b(a.row_layout(), bg);
      DistVector x(a.row_layout());
      const JacobiPreconditioner jacobi(a);
      const SolveResult r =
          pcg_solve(a, b, x, jacobi,
                    {.rel_tol = 1e-10, .max_iterations = max_iterations,
                     .track_residual_history = true});
      const std::uint64_t digest = history_digest(r);

      JsonValue cell = JsonValue::object();
      cell["ranks"] = nranks;
      cell["comm"] = node_aware ? "node-aware" : "flat";
      cell["ranks_per_node"] = rpn;
      cell["rows"] = stats.rows;
      cell["nnz"] = stats.nnz;
      cell["fingerprint"] = hash_hex(fp.content_hash);
      cell["max_rank_rows"] = stats.max_rank_rows;
      cell["max_rank_nnz"] = stats.max_rank_nnz;
      cell["balance"] = stats.balance();
      cell["generate_seconds"] = stats.generate_seconds;
      cell["iterations"] = r.iterations;
      cell["residual_digest"] = hash_hex(digest);
      cell["halo_bytes"] = r.comm.halo_bytes;
      cell["halo_intra_bytes"] = r.comm.halo_intra_bytes;
      cell["halo_inter_bytes"] = r.comm.halo_inter_bytes;
      cell["halo_messages"] = r.comm.halo_messages;
      cell["max_rank_halo_recv_bytes"] = max_rank_halo_recv_bytes(a);
      fixed_cells.push_back(std::move(cell));

      fixed_table.add_row(
          {std::to_string(nranks), node_aware ? "node-aware" : "flat",
           hash_hex(fp.content_hash), strformat("%.3f", stats.balance()),
           std::to_string(r.iterations), hash_hex(digest),
           std::to_string(r.comm.halo_bytes),
           std::to_string(r.comm.halo_intra_bytes),
           std::to_string(r.comm.halo_inter_bytes)});
    }
  }
  fixed["cells"] = std::move(fixed_cells);
  doc["fixed"] = std::move(fixed);
  std::cout << "fixed series (" << fixed_spec << "):\n";
  fixed_table.print(std::cout);

  // ---- weak series: fixed rows/rank, growing ranks, comm neutrality ----
  JsonValue weak = JsonValue::object();
  weak["spec"] = weak_spec;
  JsonValue weak_cells = JsonValue::array();
  TextTable weak_table({"ranks", "rows", "max.halo.recv.B", "new.cols.comm",
                        "new.cols.full", "added.comm", "added.full"});
  // 256 B lines (a64fx): the widest extension reach, the strongest test of
  // the admission rule.
  constexpr int kLineBytes = 256;
  for (const rank_t nranks : {4, 8, 16}) {
    const wgen::ResolvedWorkload w =
        wgen::resolve_workload(wgen::parse_workload_spec(weak_spec), nranks);
    wgen::WgenStats stats;
    const DistCsr a = wgen::generate_dist(w, nranks, CommConfig{}, &stats);
    const Layout& layout = a.row_layout();
    const MatrixFingerprint fp = fingerprint_rank_local(a);

    // The lower-triangular structure of the operator — the seed pattern S
    // of G. Structure only: values are never materialized globally.
    const RankLocalRows rows = wgen::generate_rows(w, 0, w.rows);
    std::vector<offset_t> lp(static_cast<std::size_t>(w.rows) + 1, 0);
    std::vector<index_t> lc;
    for (index_t i = 0; i < w.rows; ++i) {
      for (offset_t e = rows.row_ptr[static_cast<std::size_t>(i)];
           e < rows.row_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
        const index_t j = rows.col_gids[static_cast<std::size_t>(e)];
        if (j <= i) lc.push_back(j);
      }
      lp[static_cast<std::size_t>(i) + 1] =
          static_cast<offset_t>(lc.size());
    }
    const SparsityPattern s(w.rows, w.rows, std::move(lp), std::move(lc));

    const ExtensionResult ext_comm =
        extend_pattern(s, layout, kLineBytes, ExtensionMode::CommAware);
    const ExtensionResult ext_full =
        extend_pattern(s, layout, kLineBytes, ExtensionMode::FullHalo);
    const auto base_need = comm_needs(s, layout);
    const std::int64_t fresh_comm =
        new_comm_cols(base_need, comm_needs(ext_comm.extended, layout));
    const std::int64_t fresh_full =
        new_comm_cols(base_need, comm_needs(ext_full.extended, layout));

    JsonValue cell = JsonValue::object();
    cell["ranks"] = nranks;
    cell["rows"] = stats.rows;
    cell["nnz"] = stats.nnz;
    cell["fingerprint"] = hash_hex(fp.content_hash);
    cell["balance"] = stats.balance();
    cell["max_rank_halo_recv_bytes"] = max_rank_halo_recv_bytes(a);
    cell["new_comm_cols_comm_aware"] = fresh_comm;
    cell["new_comm_cols_full_halo"] = fresh_full;
    cell["halo_added_comm_aware"] = ext_comm.halo_added;
    cell["halo_added_full_halo"] = ext_full.halo_added;
    weak_cells.push_back(std::move(cell));

    weak_table.add_row({std::to_string(nranks), std::to_string(stats.rows),
                        std::to_string(max_rank_halo_recv_bytes(a)),
                        std::to_string(fresh_comm),
                        std::to_string(fresh_full),
                        std::to_string(ext_comm.halo_added),
                        std::to_string(ext_full.halo_added)});
  }
  weak["cells"] = std::move(weak_cells);
  doc["weak"] = std::move(weak);
  std::cout << "\nweak series (" << weak_spec << ", " << kLineBytes
            << " B lines):\n";
  weak_table.print(std::cout);

  atomic_write_file(out_path, doc.dump() + "\n");
  std::cout << "\nartifact -> " << out_path
            << " (gate: tools/bench_diff.py --mode weakscale)\n";
  return 0;
}
