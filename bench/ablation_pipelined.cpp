// Communication-avoiding CG ablation: classic PCG (3 allreduces/iteration)
// vs Chronopoulos-Gear pipelined PCG (1 fused allreduce/iteration) under the
// FSAIE-Comm preconditioner, across rank counts. The allreduce term grows
// like alpha*log2(P); at the paper's 32,768 cores it is a visible slice of
// the iteration, and this ablation shows how the modeled benefit scales.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "solver/pipelined_cg.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — classic vs pipelined (Chronopoulos-Gear) PCG",
               "extends HPDC'22: the alpha*log2(P) allreduce term at scale");

  const Machine machine = machine_zen2();
  const auto& entry = suite_entry("Queen_4147");
  const CsrMatrix a = entry.generate();

  TextTable table({"ranks", "iters.classic", "iters.pipelined",
                   "allreduce.share.classic%", "time.classic",
                   "time.pipelined", "pipelined.gain%"});
  for (const rank_t nranks : {8, 16, 32, 64}) {
    const PartitionedSystem sys = partition_system(a, nranks);
    const DistCsr a_dist = DistCsr::distribute(sys.matrix, sys.layout);
    Rng rng(13);
    std::vector<value_t> bg(static_cast<std::size_t>(a.rows()));
    for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
    const DistVector b(sys.layout, bg);

    FsaiOptions opts;
    opts.extension = ExtensionMode::CommAware;
    opts.cache_line_bytes = machine.l1.line_bytes;
    opts.filter = 0.01;
    opts.filter_strategy = FilterStrategy::Dynamic;
    const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
    const auto precond = make_factorized_preconditioner(build, "comm");

    DistVector x1(sys.layout);
    const auto classic = pcg_solve(a_dist, b, x1, *precond,
                                   {.rel_tol = 1e-8, .max_iterations = 20000});
    DistVector x2(sys.layout);
    const auto piped = pcg_solve_pipelined(
        a_dist, b, x2, *precond, {.rel_tol = 1e-8, .max_iterations = 20000});

    const CostModel cost(machine, {.threads_per_rank = 8});
    const auto iter = cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist);
    const double t_classic = classic.iterations * iter.total();
    // Pipelined: one allreduce (of 3 fused scalars) instead of three.
    const double pipelined_iter_cost =
        iter.total() - iter.allreduce + cost.allreduce_cost(nranks);
    const double t_piped = piped.iterations * pipelined_iter_cost;

    table.add_row({std::to_string(nranks), std::to_string(classic.iterations),
                   std::to_string(piped.iterations),
                   pct2(100.0 * iter.allreduce / iter.total()), sci2(t_classic),
                   sci2(t_piped), pct2(100.0 * (t_classic - t_piped) / t_classic)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the allreduce share — and with it the "
               "pipelined gain — grows with the rank count, while iteration "
               "counts stay within a couple of steps of classic PCG.\n";
  return 0;
}
