// Table 6 reproduction: Zen 2 averages for FSAIE-Comm with dynamic filters.
// Same 64 B lines as Skylake, so the patterns — and iteration counts — match
// the Skylake runs; only the machine model (bandwidth, FLOP rate, network)
// changes the time column.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 6 — FSAIE-Comm dynamic filter sweep, small suite, Zen 2",
               "HPDC'22 Table 6 (paper best filter: 20.64% iters, 16.74% time)");
  ExperimentConfig cfg;
  cfg.machine = machine_zen2();
  ExperimentRunner runner(cfg);
  print_sweep_block(runner, small_suite(), ExtensionMode::CommAware,
                    FilterStrategy::Dynamic, "FSAIE-Comm - Dynamic Filter");
  return 0;
}
