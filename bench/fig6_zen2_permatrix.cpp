// Figure 6 reproduction: per-matrix time decrease of FSAIE-Comm vs FSAI on
// the Zen 2 model, best dynamic Filter and Filter 0.05.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Figure 6 — per-matrix time decrease, Zen 2",
               "HPDC'22 Fig. 6 (best Filter + Filter 0.05 bars)");
  ExperimentConfig cfg;
  cfg.machine = machine_zen2();
  ExperimentRunner runner(cfg);
  print_permatrix_figure(runner, small_suite(), 0.05);
  return 0;
}
