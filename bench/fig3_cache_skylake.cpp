// Figure 3 reproduction (Skylake): histograms over the 39-matrix suite of
//  (a) L1 data-cache misses on accesses to x in G^T G x per nonzero of G
//      (set-associative cache simulator), and
//  (b) GFLOP/s per process in the preconditioning SpMVs (machine cost model),
// comparing baseline FSAI against unfiltered FSAIE-Comm, 8 threads/rank.
#include "bench_common.hpp"

int main() {
  fsaic::bench::run_cache_figure(
      fsaic::machine_skylake(),
      "Figure 3 — cache misses & GFLOP/s histograms, Skylake",
      "HPDC'22 Fig. 3 (FSAI vs unfiltered FSAIE-Comm; paper: ~6% FLOP/s "
      "increase)");
  return 0;
}
