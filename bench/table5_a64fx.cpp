// Table 5 reproduction: A64FX averages for FSAIE-Comm with dynamic filters.
// The 256 B cache lines permit 4x larger extensions, which is where the
// paper sees its biggest gains (26.44% average time decrease).
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 5 — FSAIE-Comm dynamic filter sweep, small suite, A64FX",
               "HPDC'22 Table 5 (paper best filter: 31.32% iters, 26.44% time)");
  ExperimentConfig cfg;
  cfg.machine = machine_a64fx();
  ExperimentRunner runner(cfg);
  print_sweep_block(runner, small_suite(), ExtensionMode::CommAware,
                    FilterStrategy::Dynamic, "FSAIE-Comm - Dynamic Filter");
  return 0;
}
