// Table 3 reproduction: Skylake averages of FSAIE and FSAIE-Comm with
// static and dynamic filtering over Filter ∈ {0.01, 0.05, 0.1, 0.2} and the
// per-matrix best Filter — average iteration decrease, average time
// decrease, highest improvement and worst degradation vs plain FSAI.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 3 — filter sweep, small suite, Skylake",
               "HPDC'22 Table 3 (paper best: FSAIE-Comm dynamic, 20.98% iters, "
               "17.98% time avg)");
  ExperimentConfig cfg;
  cfg.machine = machine_skylake();
  ExperimentRunner runner(cfg);
  const auto& suite = small_suite();
  print_sweep_block(runner, suite, ExtensionMode::LocalOnly,
                    FilterStrategy::Static, "FSAIE - Static Filter");
  print_sweep_block(runner, suite, ExtensionMode::LocalOnly,
                    FilterStrategy::Dynamic, "FSAIE - Dynamic Filter");
  print_sweep_block(runner, suite, ExtensionMode::CommAware,
                    FilterStrategy::Static, "FSAIE-Comm - Static Filter");
  print_sweep_block(runner, suite, ExtensionMode::CommAware,
                    FilterStrategy::Dynamic, "FSAIE-Comm - Dynamic Filter");
  return 0;
}
