// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "exec/exec_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "obs/report.hpp"

namespace fsaic::bench {

/// The Filter values the paper sweeps in Tables 3/5/6/7.
inline const std::vector<value_t> kFilters{0.01, 0.05, 0.1, 0.2};

/// Honour the FSAIC_REPORT environment variable: when set, every run the
/// bench computes is also appended as one JSONL record to that path, so a
/// sweep over bench binaries leaves a machine-readable artifact next to the
/// text tables (FSAIC_REPORT=runs.jsonl build/bench/table1_matrices). The
/// returned writer owns the file; keep it alive for the bench's duration.
inline std::unique_ptr<RunReportWriter> attach_env_report(
    ExperimentRunner& runner) {
  const char* path = std::getenv("FSAIC_REPORT");
  if (path == nullptr || *path == '\0') return nullptr;
  auto writer = std::make_unique<RunReportWriter>(std::string(path));
  runner.set_report_writer(writer.get());
  return writer;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==== " << title << " ====\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  // Benches route distributed operations through the process-wide default
  // executor; results are bit-identical either way, so the mode is purely
  // informational.
  const ExecPolicy policy = ExecPolicy::from_env();
  if (policy.threaded()) {
    std::cout << "execution: threaded SPMD, " << policy.nthreads
              << " threads (FSAIC_THREADS)\n";
  }
  std::cout << "\n";
}

/// Per-matrix method columns in the style of the paper's Tables 1-2:
/// modeled solver time, iterations, % NNZ for FSAI / FSAIE / FSAIE-Comm.
inline void print_matrix_table(ExperimentRunner& runner,
                               const std::vector<SuiteEntry>& suite,
                               value_t filter) {
  TextTable table({"ID", "Matrix", "#rows", "NNZ", "Ranks",
                   "FSAI.time", "FSAI.it",
                   "FSAIE.time", "FSAIE.it", "FSAIE.%NNZ",
                   "Comm.time", "Comm.it", "Comm.%NNZ",
                   "paper.FSAI.it", "paper.Comm.it", "paper.Comm.%NNZ"});
  int id = 1;
  for (const auto& entry : suite) {
    const auto& base = runner.baseline(entry);
    const auto& fsaie = runner.run(
        entry, {ExtensionMode::LocalOnly, FilterStrategy::Dynamic, filter});
    const auto& comm = runner.run(
        entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, filter});
    table.add_row({std::to_string(id++), entry.name, std::to_string(base.rows),
                   std::to_string(base.matrix_nnz), std::to_string(base.nranks),
                   sci2(base.modeled_time), std::to_string(base.iterations),
                   sci2(fsaie.modeled_time), std::to_string(fsaie.iterations),
                   pct2(fsaie.nnz_increase_pct),
                   sci2(comm.modeled_time), std::to_string(comm.iterations),
                   pct2(comm.nnz_increase_pct),
                   std::to_string(entry.paper_fsai_iters),
                   std::to_string(entry.paper_fsaie_comm_iters),
                   pct2(entry.paper_nnz_pct)});
  }
  table.print(std::cout);
}

/// Filter-sweep summary block (one strategy, one extension mode), the format
/// of Tables 3/5/6/7: avg iteration dec, avg time dec, highest improvement,
/// highest degradation per filter value plus the per-matrix best filter.
inline void print_sweep_block(ExperimentRunner& runner,
                              const std::vector<SuiteEntry>& suite,
                              ExtensionMode mode, FilterStrategy strategy,
                              const std::string& title) {
  std::cout << title << "\n";
  TextTable table({"Filter", "Avg.iter.dec%", "Avg.time.dec%", "Highest.imp%",
                   "Highest.deg%"});
  for (value_t f : kFilters) {
    const auto imps = fixed_filter_improvements(runner, suite, mode, strategy, f);
    const auto row = summarize(imps);
    table.add_row({strformat("%.2f", static_cast<double>(f)),
                   pct2(row.avg_iterations_pct), pct2(row.avg_time_pct),
                   pct2(row.highest_improvement_pct),
                   pct2(row.highest_degradation_pct)});
  }
  const auto best = summarize(
      best_filter_improvements(runner, suite, mode, strategy, kFilters));
  table.add_row({"best", pct2(best.avg_iterations_pct), pct2(best.avg_time_pct),
                 pct2(best.highest_improvement_pct),
                 pct2(best.highest_degradation_pct)});
  table.print(std::cout);
  std::cout << "\n";
}

/// Per-matrix time-decrease series (the Figure 2/4/6/8 bars): best filter
/// and one fixed filter.
inline void print_permatrix_figure(ExperimentRunner& runner,
                                   const std::vector<SuiteEntry>& suite,
                                   value_t fixed_filter) {
  TextTable table({"Matrix", "time.dec.best%", strformat(
                       "time.dec.f=%.2f%%", static_cast<double>(fixed_filter))});
  for (const auto& entry : suite) {
    const auto& base = runner.baseline(entry);
    double best = -1e300;
    for (value_t f : kFilters) {
      const auto& rec = runner.run(
          entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, f});
      best = std::max(best, improvement_over(base, rec).time_pct);
    }
    const auto& fixed = runner.run(
        entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, fixed_filter});
    table.add_row({entry.name, pct2(best),
                   pct2(improvement_over(base, fixed).time_pct)});
  }
  table.print(std::cout);
}

/// Histogram helper for the Figure 3/5/7 panels: bucket a metric over the
/// suite and print counts for the FSAI and FSAIE-Comm series side by side.
inline void print_histogram(const std::string& metric,
                            const std::vector<double>& fsai_values,
                            const std::vector<double>& comm_values, int buckets) {
  double lo = 1e300;
  double hi = -1e300;
  for (const auto* vec : {&fsai_values, &comm_values}) {
    for (double v : *vec) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) hi = lo + 1.0;
  TextTable table({metric, "FSAI.count", "FSAIE-Comm.count"});
  const double width = (hi - lo) / buckets;
  for (int b = 0; b < buckets; ++b) {
    const double b_lo = lo + b * width;
    const double b_hi = b_lo + width;
    int c1 = 0;
    int c2 = 0;
    for (double v : fsai_values) {
      if (v >= b_lo && (v < b_hi || b == buckets - 1)) ++c1;
    }
    for (double v : comm_values) {
      if (v >= b_lo && (v < b_hi || b == buckets - 1)) ++c2;
    }
    table.add_row({strformat("[%.3g, %.3g)", b_lo, b_hi), std::to_string(c1),
                   std::to_string(c2)});
  }
  table.print(std::cout);
}

inline double average(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

/// The Figure 3/5 panels: histograms of x-access L1 misses per nnz(G) and of
/// GFLOP/s per process in G^T G x, FSAI vs unfiltered FSAIE-Comm.
inline void run_cache_figure(const Machine& machine, const std::string& title,
                             const std::string& ref) {
  print_header(title, ref);
  ExperimentConfig cfg;
  cfg.machine = machine;
  cfg.threads_per_rank = 8;
  ExperimentRunner runner(cfg);

  std::vector<double> fsai_misses;
  std::vector<double> comm_misses;
  std::vector<double> fsai_gflops;
  std::vector<double> comm_gflops;
  for (const auto& entry : small_suite()) {
    const auto& base = runner.baseline(entry);
    const auto& comm = runner.run(
        entry, {ExtensionMode::CommAware, FilterStrategy::Static, 0.0});
    fsai_misses.push_back(base.x_misses_per_gnnz);
    comm_misses.push_back(comm.x_misses_per_gnnz);
    fsai_gflops.push_back(base.precond_gflops);
    comm_gflops.push_back(comm.precond_gflops);
  }

  std::cout << "(a) L1 DCM on x per nnz(G) in G^T G x\n";
  print_histogram("misses/nnz", fsai_misses, comm_misses, 10);
  std::cout << strformat("\navg misses/nnz: FSAI %.4f  FSAIE-Comm %.4f "
                         "(decrease %.1f%%)\n",
                         average(fsai_misses), average(comm_misses),
                         100.0 * (1.0 - average(comm_misses) /
                                            average(fsai_misses)));

  std::cout << "\n(b) GFLOP/s per process in G^T G x\n";
  print_histogram("GFLOP/s", fsai_gflops, comm_gflops, 10);
  std::cout << strformat("\navg GFLOP/s: FSAI %.3f  FSAIE-Comm %.3f "
                         "(increase %.1f%%)\n",
                         average(fsai_gflops), average(comm_gflops),
                         100.0 * (average(comm_gflops) / average(fsai_gflops) -
                                  1.0));
}

}  // namespace fsaic::bench
