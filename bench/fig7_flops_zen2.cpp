// Figure 7 reproduction (Zen 2): GFLOP/s-per-process histogram of the
// preconditioning operation G^T G x, FSAI vs unfiltered FSAIE-Comm. The
// paper notes much higher absolute FLOP/s on this architecture and an
// average FSAIE-Comm improvement of ~19% on the small set.
#include "bench_common.hpp"

int main() {
  fsaic::bench::run_cache_figure(
      fsaic::machine_zen2(),
      "Figure 7 — GFLOP/s per process histogram, Zen 2",
      "HPDC'22 Fig. 7 (panel (b) is the paper's figure; panel (a) shown for "
      "completeness)");
  return 0;
}
