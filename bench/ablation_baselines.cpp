// Baseline panorama: the full preconditioner ladder on representative suite
// matrices — unpreconditioned CG, Jacobi, Block-Jacobi, block-IC(0), SPAI,
// FSAI and FSAIE-Comm — with iterations, modeled time and application
// communication. Reproduces the *motivation* of the paper (Sections 1-2):
// implicit factorizations (IC) are strong numerically but their triangular
// solves are sequential within a rank and decouple across ranks, while the
// SAI family applies as communication-regular SpMVs.
#include "bench_common.hpp"

#include "core/spai.hpp"
#include "solver/chebyshev.hpp"
#include "solver/ic0.hpp"
#include "solver/pcg.hpp"

namespace {

using namespace fsaic;
using namespace fsaic::bench;

/// Modeled cost of one block-IC(0) application: two triangular sweeps over
/// the local factor, *serial within the rank* (the dependency chain runs
/// through every row), so no thread speedup — the structural handicap of
/// implicit preconditioners that motivates FSAI.
double ic_apply_cost(const Machine& machine, const Layout& layout,
                     const std::vector<offset_t>& factor_nnz) {
  double worst = 0.0;
  for (rank_t p = 0; p < layout.nranks(); ++p) {
    const double work =
        2.0 * static_cast<double>(factor_nnz[static_cast<std::size_t>(p)]) *
        (machine.nnz_stream_cost() + machine.nnz_flop_cost());
    worst = std::max(worst, work);
  }
  return worst;
}

}  // namespace

int main() {
  print_header("Baseline comparison — the preconditioner ladder",
               "HPDC'22 Sections 1-2 (why FSAI over implicit methods)");

  const Machine machine = machine_skylake();
  const CostModel cost(machine, {.threads_per_rank = 8});

  for (const char* name : {"thermal2", "Fault_639", "af_shell7"}) {
    const auto& entry = suite_entry(name);
    ExperimentConfig cfg;
    cfg.machine = machine;
    ExperimentRunner runner(cfg);
    const auto& sys = runner.prepare(entry);

    TextTable table({"preconditioner", "iters", "apply.cost/iter", "iter.cost",
                     "modeled.time", "apply.halo.B"});
    const auto add_run = [&](const std::string& label, const Preconditioner& m,
                             double apply_cost, std::int64_t apply_halo) {
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, m, cfg.solve);
      const double iter_cost = cost.spmv_cost(sys.a_dist).total() +
                               cost.blas1_cost(sys.layout, 3) +
                               3.0 * cost.allreduce_cost(sys.nranks) + apply_cost;
      table.add_row({label,
                     std::to_string(r.iterations) + (r.converged ? "" : "*"),
                     sci2(apply_cost), sci2(iter_cost),
                     sci2(r.iterations * iter_cost), std::to_string(apply_halo)});
    };

    // Explicit (SpMV-applied) preconditioners reuse the SpMV cost model.
    add_run("none", IdentityPreconditioner{}, 0.0, 0);
    {
      const JacobiPreconditioner m(sys.a_dist);
      add_run("jacobi", m, cost.blas1_cost(sys.layout, 1), 0);
    }
    {
      const BlockJacobiPreconditioner m(sys.a_dist, 32);
      add_run("block-jacobi(32)", m, cost.blas1_cost(sys.layout, 2), 0);
    }
    {
      const BlockIc0Preconditioner m(sys.a_dist);
      std::vector<offset_t> fnnz;
      for (rank_t p = 0; p < sys.nranks; ++p) {
        // The factor has the local block's lower-triangular nonzeros.
        fnnz.push_back((sys.a_dist.block(p).local_entries +
                        sys.layout.local_size(p)) /
                       2);
      }
      add_run("block-ic0 (serial solves)", m,
              ic_apply_cost(machine, sys.layout, fnnz), 0);
    }
    {
      const SpaiPreconditioner m(sys.matrix, sys.layout);
      add_run("spai (symmetrized)", m, cost.spmv_cost(m.m()).total(),
              m.m().halo_update_bytes());
    }
    {
      // Chebyshev degree 4: the other SpMV-only preconditioner — same
      // communication regularity as FSAI, quality from the polynomial
      // degree instead of the pattern.
      const auto cheb =
          ChebyshevPreconditioner::with_estimated_spectrum(sys.matrix,
                                                           sys.a_dist, 4);
      add_run("chebyshev(4)", cheb, 3.0 * cost.spmv_cost(sys.a_dist).total(),
              3 * sys.a_dist.halo_update_bytes());
    }
    for (const auto mode : {ExtensionMode::None, ExtensionMode::CommAware}) {
      FsaiOptions opts;
      opts.extension = mode;
      opts.cache_line_bytes = machine.l1.line_bytes;
      opts.filter = 0.01;
      opts.filter_strategy = FilterStrategy::Dynamic;
      const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const auto m = make_factorized_preconditioner(build, to_string(mode));
      add_run(to_string(mode), *m,
              cost.spmv_cost(build.g_dist).total() +
                  cost.spmv_cost(build.gt_dist).total(),
              build.g_dist.halo_update_bytes() +
                  build.gt_dist.halo_update_bytes());
    }

    std::cout << entry.name << " (" << sys.matrix.rows() << " rows, "
              << sys.nranks << " ranks):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading guide: block-ic0 wins iterations but its serial "
               "triangular solves dominate the modeled iteration cost; the "
               "FSAI family applies as thread-parallel SpMVs, and FSAIE-Comm "
               "buys extra iterations at unchanged halo traffic.\n";
  return 0;
}
