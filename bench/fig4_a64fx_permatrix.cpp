// Figure 4 reproduction: per-matrix time decrease of FSAIE-Comm vs FSAI on
// the A64FX model (256 B lines), best dynamic Filter and Filter 0.05.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Figure 4 — per-matrix time decrease, A64FX",
               "HPDC'22 Fig. 4 (best Filter + Filter 0.05 bars)");
  ExperimentConfig cfg;
  cfg.machine = machine_a64fx();
  ExperimentRunner runner(cfg);
  print_permatrix_figure(runner, small_suite(), 0.05);
  return 0;
}
