// Serving throughput benchmark: replay a synthetic mixed workload against
// the in-process SolveService and measure what the resident server
// sustains. The workload mixes operators (weighted), right-hand-side seeds
// and deadlines; requests arrive open-loop on a Poisson schedule at a
// target rate for a target duration. The run emits one JSON document
// (BENCH_serve.json) with requests/sec, per-stage latency quantiles
// (queue / setup / solve / total), the cache hit rate, the batch-size
// distribution and the rejection counts — the artifact tools/bench_diff.py
// and the serve-throughput-smoke CI job consume.
//
// Determinism: the whole request sequence (ids, operator mix, RHS seeds,
// deadline flags, arrival offsets) is drawn from one seeded xoshiro256**
// stream *before* the clock starts, the queue capacity exceeds the request
// count (so "queue_full" cannot fire), and the only deadlines issued are
// deadline_ms = 0 — rejected deterministically at submission. Two runs with
// the same seed therefore replay the identical workload with identical
// admission outcomes and bit-identical residual histories, regardless of
// worker count or wall-clock jitter; the run digests prove it.
//
// Configuration (environment):
//   FSAIC_SERVE_BENCH_SECONDS        target replay duration   (default 2.0)
//   FSAIC_SERVE_BENCH_RATE           arrival rate, req/s      (default 8.0)
//   FSAIC_SERVE_BENCH_SEED           workload seed            (default 2022)
//   FSAIC_SERVE_BENCH_WORKERS        service worker threads   (default 2)
//   FSAIC_SERVE_BENCH_MIX            operator:weight list
//                       (default "thermal2:3,ecology2:2,parabolic_fem:1")
//   FSAIC_SERVE_BENCH_DEADLINE_PCT   % of requests with deadline_ms = 0
//                                    (default 5)
//   FSAIC_SERVE_BENCH_CACHE          factor-cache capacity    (default 8)
//   FSAIC_SERVE_BENCH_STORE          disk-tier store dir (default none; set
//                                    to exercise the warm-restart path —
//                                    disk reloads count as cache.disk_hits)
//   FSAIC_SERVE_BENCH_OUT            output path (default BENCH_serve.json)
//   FSAIC_REPORT                     also append a one-line JSONL summary
//
// Priorities are drawn from a second seeded stream so the workload digest
// (id, operator, RHS seed, deadline flag) is unchanged from artifacts
// recorded before priority lanes existed — bench_diff's enforced gates
// stay comparable against the committed baseline.
//
// BENCH_serve.json schema: see docs/service.md ("Serving performance").
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace fsaic;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::stod(v);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

struct MixEntry {
  std::string op;
  double weight;
};

/// Parse "thermal2:3,ecology2:2" into weighted entries.
std::vector<MixEntry> parse_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t colon = item.find(':');
    FSAIC_REQUIRE(colon != std::string::npos && colon > 0,
                  "bad FSAIC_SERVE_BENCH_MIX entry: " + item);
    mix.push_back({item.substr(0, colon), std::stod(item.substr(colon + 1))});
    FSAIC_REQUIRE(mix.back().weight > 0.0,
                  "mix weight must be positive: " + item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  FSAIC_REQUIRE(!mix.empty(), "empty FSAIC_SERVE_BENCH_MIX");
  return mix;
}

/// FNV-1a 64-bit — the digests that prove two runs replayed the same
/// workload with the same outcomes and bit-identical residuals.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    const char nul = '\0';
    bytes(&nul, 1);
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  [[nodiscard]] std::string hex() const {
    return strformat("%016llx", static_cast<unsigned long long>(h));
  }
};

/// Exact nearest-rank quantile of an ascending-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * n)));
  return sorted[static_cast<std::size_t>(rank - 1)];
}

JsonValue stage_quantiles(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  JsonValue v = JsonValue::object();
  v["count"] = static_cast<std::int64_t>(values.size());
  v["mean_us"] = values.empty() ? 0.0 : sum / static_cast<double>(values.size());
  v["p50_us"] = quantile_sorted(values, 0.50);
  v["p95_us"] = quantile_sorted(values, 0.95);
  v["p99_us"] = quantile_sorted(values, 0.99);
  v["max_us"] = values.empty() ? 0.0 : values.back();
  return v;
}

}  // namespace

int main() {
  const double seconds = env_double("FSAIC_SERVE_BENCH_SECONDS", 2.0);
  const double rate = env_double("FSAIC_SERVE_BENCH_RATE", 8.0);
  const auto seed =
      static_cast<std::uint64_t>(env_double("FSAIC_SERVE_BENCH_SEED", 2022));
  const int workers =
      static_cast<int>(env_double("FSAIC_SERVE_BENCH_WORKERS", 2));
  const double deadline_pct =
      env_double("FSAIC_SERVE_BENCH_DEADLINE_PCT", 5.0);
  const std::string mix_spec = env_string(
      "FSAIC_SERVE_BENCH_MIX", "thermal2:3,ecology2:2,parabolic_fem:1");
  const auto cache_capacity =
      static_cast<std::size_t>(env_double("FSAIC_SERVE_BENCH_CACHE", 8));
  const std::string store_dir = env_string("FSAIC_SERVE_BENCH_STORE", "");
  const std::string out_path =
      env_string("FSAIC_SERVE_BENCH_OUT", "BENCH_serve.json");
  const std::vector<MixEntry> mix = parse_mix(mix_spec);

  std::cout << "==== Solve service — sustained-throughput replay ====\n"
            << "mix " << mix_spec << ", " << rate << " req/s for " << seconds
            << " s, " << workers << " worker(s), seed " << seed << "\n\n";

  // Draw the entire workload up front from the seeded stream: everything
  // that defines a request is fixed before the clock starts.
  const auto n_requests = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(seconds * rate)));
  double mix_total = 0.0;
  for (const auto& m : mix) mix_total += m.weight;

  Rng rng(seed);
  // Separate stream for the priority draw: it must not perturb the workload
  // stream, or the digest would diverge from pre-priority baselines.
  Rng prio_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<SolveRequest> workload;
  std::vector<double> arrival_s;  // offset of each submission from t0
  workload.reserve(static_cast<std::size_t>(n_requests));
  double t_arrive = 0.0;
  Fnv1a workload_digest;
  std::map<std::string, std::int64_t> mix_counts;
  for (std::int64_t i = 0; i < n_requests; ++i) {
    SolveRequest req;
    req.id = "r";
    req.id += std::to_string(i + 1);
    double pick = rng.next_uniform() * mix_total;
    req.generate = mix.back().op;
    for (const auto& m : mix) {
      if (pick < m.weight) {
        req.generate = m.op;
        break;
      }
      pick -= m.weight;
    }
    req.rhs_seed = 1000 + static_cast<std::uint64_t>(rng.next_index(50));
    // Only deadline_ms = 0 is ever issued: it rejects at submission time,
    // independent of scheduling, so admission outcomes stay reproducible.
    const bool expired = rng.next_uniform() * 100.0 < deadline_pct;
    if (expired) req.deadline_ms = 0.0;
    // Priority shuffles scheduling order only; per-request residuals are a
    // function of (operator, RHS) alone, so the residual digest is immune.
    req.priority = static_cast<int>(prio_rng.next_index(3));
    req.want_history = true;  // residual digests need the full history
    t_arrive += -std::log(1.0 - rng.next_uniform()) / rate;
    arrival_s.push_back(t_arrive);
    workload_digest.str(req.id);
    workload_digest.str(req.generate);
    workload_digest.u64(req.rhs_seed);
    workload_digest.u64(expired ? 1 : 0);
    ++mix_counts[req.generate];
    workload.push_back(std::move(req));
  }

  // Collect every response; rid orders them by submission for the digests.
  std::mutex resp_mutex;
  std::vector<SolveResponse> responses;
  responses.reserve(workload.size());

  ServiceOptions opts;
  opts.workers = workers;
  // Capacity above the request count: "queue_full" would make admission
  // depend on drain speed, breaking run-to-run reproducibility.
  opts.queue_capacity = static_cast<std::size_t>(n_requests) + 1;
  opts.cache_capacity = cache_capacity;
  opts.store_dir = store_dir;

  const auto t0 = std::chrono::steady_clock::now();
  double wall_s = 0.0;
  {
    SolveService service(opts, [&](const SolveResponse& r) {
      const std::lock_guard<std::mutex> lock(resp_mutex);
      responses.push_back(r);
    });
    for (std::size_t i = 0; i < workload.size(); ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(arrival_s[i]));
      service.submit(std::move(workload[i]));
    }
    service.drain();
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  }

  // Post-process by rid (submission order) so digests are schedule-free.
  std::sort(responses.begin(), responses.end(),
            [](const SolveResponse& a, const SolveResponse& b) {
              return a.rid < b.rid;
            });
  FSAIC_REQUIRE(responses.size() == workload.size(),
                "response count does not match request count");

  Fnv1a admission_digest;
  Fnv1a residual_digest;
  std::int64_t completed = 0;
  std::int64_t rejected_deadline = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_predicted = 0;
  std::int64_t errors = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_disk_hits = 0;
  std::int64_t cache_misses = 0;
  std::map<int, std::int64_t> batch_sizes;
  std::vector<double> queue_us;
  std::vector<double> setup_us;
  std::vector<double> solve_us;
  std::vector<double> total_us;
  for (const SolveResponse& r : responses) {
    admission_digest.str(r.id);
    admission_digest.str(r.status);
    admission_digest.str(r.reason);
    if (r.status == "rejected") {
      if (r.reason == "deadline") ++rejected_deadline;
      if (r.reason == "deadline_predicted") ++rejected_predicted;
      if (r.reason == "queue_full") ++rejected_queue_full;
      continue;
    }
    if (r.status == "error") {
      ++errors;
      continue;
    }
    ++completed;
    if (r.cache == "hit") ++cache_hits;
    if (r.cache == "disk") ++cache_disk_hits;
    if (r.cache == "miss") ++cache_misses;
    ++batch_sizes[r.batch_size];
    queue_us.push_back(r.queue_us);
    setup_us.push_back(r.setup_us);
    solve_us.push_back(r.solve_us);
    total_us.push_back(r.total_us);
    residual_digest.str(r.id);
    residual_digest.u64(static_cast<std::uint64_t>(r.iterations));
    residual_digest.f64(r.final_residual);
    for (double res : r.residuals) residual_digest.f64(res);
  }

  JsonValue doc = JsonValue::object();
  doc["schema"] = "fsaic.bench.serve/v1";
  doc["bench"] = "serve_throughput";
  JsonValue config = JsonValue::object();
  config["seconds"] = seconds;
  config["rate_rps"] = rate;
  config["seed"] = static_cast<std::int64_t>(seed);
  config["workers"] = workers;
  config["mix"] = mix_spec;
  config["deadline_pct"] = deadline_pct;
  config["cache_capacity"] = static_cast<std::int64_t>(cache_capacity);
  if (!store_dir.empty()) config["store"] = store_dir;
  doc["config"] = std::move(config);
  JsonValue reqs = JsonValue::object();
  reqs["submitted"] = n_requests;
  reqs["admitted"] = n_requests - rejected_deadline - rejected_queue_full -
                     rejected_predicted;
  reqs["completed"] = completed;
  reqs["errors"] = errors;
  reqs["rejected_deadline"] = rejected_deadline;
  reqs["rejected_predicted"] = rejected_predicted;
  reqs["rejected_queue_full"] = rejected_queue_full;
  doc["requests"] = std::move(reqs);
  doc["wall_seconds"] = wall_s;
  doc["throughput_rps"] = static_cast<double>(completed) / wall_s;
  JsonValue latency = JsonValue::object();
  latency["queue"] = stage_quantiles(std::move(queue_us));
  latency["setup"] = stage_quantiles(std::move(setup_us));
  latency["solve"] = stage_quantiles(std::move(solve_us));
  latency["total"] = stage_quantiles(std::move(total_us));
  doc["latency"] = std::move(latency);
  JsonValue cache = JsonValue::object();
  cache["hits"] = cache_hits;
  cache["disk_hits"] = cache_disk_hits;
  cache["misses"] = cache_misses;
  cache["hit_rate"] =
      completed == 0 ? 0.0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(cache_hits + cache_disk_hits +
                                               cache_misses);
  doc["cache"] = std::move(cache);
  JsonValue batches = JsonValue::object();
  for (const auto& [size, count] : batch_sizes) {
    batches[std::to_string(size)] = count;
  }
  doc["batch_size_counts"] = std::move(batches);
  JsonValue mixes = JsonValue::object();
  for (const auto& [op, count] : mix_counts) mixes[op] = count;
  doc["operator_counts"] = std::move(mixes);
  JsonValue digests = JsonValue::object();
  digests["workload"] = workload_digest.hex();
  digests["admission"] = admission_digest.hex();
  digests["residuals"] = residual_digest.hex();
  doc["digests"] = std::move(digests);

  atomic_write_file(out_path, doc.dump() + "\n");

  std::cout << strformat(
      "replayed %lld requests in %.2f s: %.2f req/s sustained\n",
      static_cast<long long>(n_requests), wall_s,
      static_cast<double>(completed) / wall_s);
  std::cout << strformat(
      "  total latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
      doc["latency"]["total"]["p50_us"].as_double() / 1e3,
      doc["latency"]["total"]["p95_us"].as_double() / 1e3,
      doc["latency"]["total"]["p99_us"].as_double() / 1e3);
  std::cout << strformat(
      "  cache: %lld hits / %lld disk / %lld misses (hit rate %.2f); "
      "rejected %lld\n",
      static_cast<long long>(cache_hits),
      static_cast<long long>(cache_disk_hits),
      static_cast<long long>(cache_misses),
      doc["cache"]["hit_rate"].as_double(),
      static_cast<long long>(rejected_deadline + rejected_predicted +
                             rejected_queue_full));
  std::cout << "  digests: workload " << workload_digest.hex()
            << ", admission " << admission_digest.hex() << ", residuals "
            << residual_digest.hex() << "\n";
  std::cout << "bench artifact -> " << out_path << "\n";

  if (const char* rp = std::getenv("FSAIC_REPORT");
      rp != nullptr && *rp != '\0') {
    RunReportWriter report{std::string(rp)};
    JsonValue rec = JsonValue::object();
    rec["bench"] = "serve_throughput";
    rec["throughput_rps"] = doc["throughput_rps"].as_double();
    rec["p99_total_us"] = doc["latency"]["total"]["p99_us"].as_double();
    rec["cache_hit_rate"] = doc["cache"]["hit_rate"].as_double();
    rec["digest_workload"] = workload_digest.hex();
    rec["digest_admission"] = admission_digest.hex();
    rec["digest_residuals"] = residual_digest.hex();
    report.write(rec);
  }

  // The replay itself is the acceptance check: every request answered, no
  // solver errors, and per-request cache accounting adds up.
  if (errors != 0 ||
      completed + rejected_deadline + rejected_predicted +
              rejected_queue_full !=
          n_requests ||
      cache_hits + cache_disk_hits + cache_misses != completed) {
    std::cout << "FAILED: inconsistent replay accounting\n";
    return 1;
  }
  return 0;
}
