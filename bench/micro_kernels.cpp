// google-benchmark microbenchmarks of the library's hot kernels: SpMV
// (serial and distributed with halo update), the FSAI row solves, the
// pattern extension at several cache-line sizes, the partitioner, and the
// cache-model replay. These measure the *implementation's* wall-clock, as
// opposed to the table/figure harnesses which report modeled cluster time.
#include <benchmark/benchmark.h>

#include "cachesim/cache_model.hpp"
#include "core/fsai_driver.hpp"
#include "graph/partition.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "graph/level_schedule.hpp"
#include "solver/ic0.hpp"
#include "sparse/ops.hpp"
#include "sparse/sell.hpp"

namespace {

using namespace fsaic;

void BM_SpmvPoisson(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(n, n);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvPoisson)->Arg(64)->Arg(128)->Arg(256);

void BM_DistSpmvHalo(benchmark::State& state) {
  const auto nranks = static_cast<rank_t>(state.range(0));
  const auto a = poisson2d(128, 128);
  const Layout l = Layout::blocked(a.rows(), nranks);
  const auto d = DistCsr::distribute(a, l);
  DistVector x(l);
  x.fill(1.0);
  DistVector y(l);
  for (auto _ : state) {
    d.spmv(x, y);
    benchmark::DoNotOptimize(&y);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistSpmvHalo)->Arg(1)->Arg(4)->Arg(16);

void BM_FsaiRowSolves(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = stencil27(n, n, n, 0.1);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  for (auto _ : state) {
    auto g = compute_fsai_factor(a, s);
    benchmark::DoNotOptimize(g.values().data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_FsaiRowSolves)->Arg(8)->Arg(12);

void BM_PatternExtension(benchmark::State& state) {
  const int line = static_cast<int>(state.range(0));
  const auto a = poisson2d(96, 96);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  const Layout l = Layout::blocked(a.rows(), 8);
  for (auto _ : state) {
    auto r = extend_pattern(s, l, line, ExtensionMode::CommAware);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() * s.nnz());
}
BENCHMARK(BM_PatternExtension)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Partitioner(benchmark::State& state) {
  const auto nparts = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(96, 96);
  const Graph g = Graph::from_pattern(a.pattern());
  for (auto _ : state) {
    auto part = partition_graph(g, nparts);
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Partitioner)->Arg(2)->Arg(8)->Arg(32);

void BM_CacheReplay(benchmark::State& state) {
  const auto a = poisson2d(128, 128);
  const CacheConfig cfg{.line_bytes = 64, .size_bytes = 32 * 1024,
                        .associativity = 8};
  for (auto _ : state) {
    auto r = replay_spmv_x_accesses(a, cfg);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CacheReplay);

void BM_PcgIteration(benchmark::State& state) {
  const auto a = poisson2d(96, 96);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const auto precond = make_factorized_preconditioner(build, "fsai");
  DistVector b(l);
  b.fill(1.0);
  for (auto _ : state) {
    DistVector x(l);
    auto r = pcg_solve(d, b, x, *precond, {.rel_tol = 0.5, .max_iterations = 1});
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_PcgIteration);

void BM_SellSpmv(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(n, n);
  const SellMatrix sell(a, 8, 64);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    sell.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SellSpmv)->Arg(64)->Arg(128)->Arg(256);

void BM_LevelSchedule(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto l = ic0_factor(poisson2d(n, n));
  for (auto _ : state) {
    auto schedule = level_schedule(l);
    benchmark::DoNotOptimize(&schedule);
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_LevelSchedule)->Arg(64)->Arg(128);

void BM_DynamicFilter(benchmark::State& state) {
  const auto a = poisson2d(64, 64);
  const index_t n = a.rows();
  const Layout layout({0, 3 * n / 4, n});  // skewed: forces bisection work
  const auto base = fsai_base_pattern(a, 1, 0.0);
  const auto ext = extend_pattern(base, layout, 256, ExtensionMode::CommAware);
  const auto g_ext = compute_fsai_factor(a, ext.extended);
  FilterOptions opts;
  opts.filter = 0.001;
  for (auto _ : state) {
    auto out = dynamic_filter(g_ext, base, layout, opts);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_DynamicFilter);

}  // namespace

BENCHMARK_MAIN();
