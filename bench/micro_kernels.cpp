// google-benchmark microbenchmarks of the library's hot kernels: SpMV
// (serial and distributed with halo update), the FSAI row solves, the
// pattern extension at several cache-line sizes, the partitioner, and the
// cache-model replay. These measure the *implementation's* wall-clock, as
// opposed to the table/figure harnesses which report modeled cluster time.
//
// With FSAIC_KERNELS_BENCH_OUT=<path> set, the binary instead runs the
// kernel-backend study over the paper's small suite and writes the
// fsaic.bench.kernels/v1 artifact (BENCH_kernels.json): per-matrix CSR vs
// SELL-C-sigma GFLOP/s + padding ratio + modeled x-miss counts, the
// fused-vs-separate CG sweep timing, and bitwise correctness verdicts.
// tools/bench_diff.py --mode kernels gates regressions on it in CI. The
// small suite is the right study population: its matrices are
// cache-resident, so the timing isolates the kernel's instruction stream;
// the large-suite entries stream from memory and all formats converge to
// the bandwidth ceiling on a single core.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>

#include "cachesim/cache_model.hpp"
#include "common/rng.hpp"
#include "core/fsai_driver.hpp"
#include "graph/partition.hpp"
#include "matgen/generators.hpp"
#include "matgen/suite.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "solver/pcg.hpp"
#include "graph/level_schedule.hpp"
#include "solver/ic0.hpp"
#include "sparse/ops.hpp"
#include "sparse/sell.hpp"
#include "sparse/vector_ops.hpp"

namespace {

using namespace fsaic;

void BM_SpmvPoisson(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(n, n);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    spmv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvPoisson)->Arg(64)->Arg(128)->Arg(256);

void BM_DistSpmvHalo(benchmark::State& state) {
  const auto nranks = static_cast<rank_t>(state.range(0));
  const auto a = poisson2d(128, 128);
  const Layout l = Layout::blocked(a.rows(), nranks);
  const auto d = DistCsr::distribute(a, l);
  DistVector x(l);
  x.fill(1.0);
  DistVector y(l);
  for (auto _ : state) {
    d.spmv(x, y);
    benchmark::DoNotOptimize(&y);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_DistSpmvHalo)->Arg(1)->Arg(4)->Arg(16);

void BM_FsaiRowSolves(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = stencil27(n, n, n, 0.1);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  for (auto _ : state) {
    auto g = compute_fsai_factor(a, s);
    benchmark::DoNotOptimize(g.values().data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_FsaiRowSolves)->Arg(8)->Arg(12);

void BM_PatternExtension(benchmark::State& state) {
  const int line = static_cast<int>(state.range(0));
  const auto a = poisson2d(96, 96);
  const auto s = fsai_base_pattern(a, 1, 0.0);
  const Layout l = Layout::blocked(a.rows(), 8);
  for (auto _ : state) {
    auto r = extend_pattern(s, l, line, ExtensionMode::CommAware);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() * s.nnz());
}
BENCHMARK(BM_PatternExtension)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_Partitioner(benchmark::State& state) {
  const auto nparts = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(96, 96);
  const Graph g = Graph::from_pattern(a.pattern());
  for (auto _ : state) {
    auto part = partition_graph(g, nparts);
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Partitioner)->Arg(2)->Arg(8)->Arg(32);

void BM_CacheReplay(benchmark::State& state) {
  const auto a = poisson2d(128, 128);
  const CacheConfig cfg{.line_bytes = 64, .size_bytes = 32 * 1024,
                        .associativity = 8};
  for (auto _ : state) {
    auto r = replay_spmv_x_accesses(a, cfg);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CacheReplay);

void BM_PcgIteration(benchmark::State& state) {
  const auto a = poisson2d(96, 96);
  const Layout l = Layout::blocked(a.rows(), 4);
  const auto d = DistCsr::distribute(a, l);
  const auto build = build_fsai_preconditioner(a, l, FsaiOptions{});
  const auto precond = make_factorized_preconditioner(build, "fsai");
  DistVector b(l);
  b.fill(1.0);
  for (auto _ : state) {
    DistVector x(l);
    auto r = pcg_solve(d, b, x, *precond, {.rel_tol = 0.5, .max_iterations = 1});
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_PcgIteration);

void BM_SellSpmv(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = poisson2d(n, n);
  const SellMatrix sell(a, 8, 64);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    sell.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SellSpmv)->Arg(64)->Arg(128)->Arg(256);

void BM_LevelSchedule(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto l = ic0_factor(poisson2d(n, n));
  for (auto _ : state) {
    auto schedule = level_schedule(l);
    benchmark::DoNotOptimize(&schedule);
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_LevelSchedule)->Arg(64)->Arg(128);

void BM_DynamicFilter(benchmark::State& state) {
  const auto a = poisson2d(64, 64);
  const index_t n = a.rows();
  const Layout layout({0, 3 * n / 4, n});  // skewed: forces bisection work
  const auto base = fsai_base_pattern(a, 1, 0.0);
  const auto ext = extend_pattern(base, layout, 256, ExtensionMode::CommAware);
  const auto g_ext = compute_fsai_factor(a, ext.extended);
  FilterOptions opts;
  opts.filter = 0.001;
  for (auto _ : state) {
    auto out = dynamic_filter(g_ext, base, layout, opts);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_DynamicFilter);

// ---- kernel-backend study (fsaic.bench.kernels/v1) ----------------------

/// Best-of-`reps` wall time of f() in seconds.
template <typename F>
double best_seconds(int reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int run_kernels_bench(const std::string& out_path) {
  constexpr index_t kChunk = 8;
  constexpr index_t kSigma = 64;
  constexpr int kReps = 7;
  const CacheConfig cache{.line_bytes = 64, .size_bytes = 32 * 1024,
                          .associativity = 8};

  JsonValue matrices = JsonValue::array();
  int sell_faster = 0;
  int correctness_diffs = 0;
  double max_padding = 1.0;
  const auto& suite = small_suite();
  for (const auto& entry : suite) {
    const CsrMatrix a = entry.generate();
    const SellMatrix sell(a, kChunk, kSigma);

    Rng rng(20260807);
    std::vector<value_t> x(static_cast<std::size_t>(a.cols()));
    for (auto& v : x) v = rng.next_uniform(-1.0, 1.0);
    std::vector<value_t> y_csr(static_cast<std::size_t>(a.rows()));
    std::vector<value_t> y_sell(static_cast<std::size_t>(a.rows()));

    // Enough kernel launches per sample to get out of timer-resolution
    // territory on the smaller suite entries.
    const int inner = static_cast<int>(
        std::max<offset_t>(1, 20'000'000 / std::max<offset_t>(1, a.nnz())));
    const double csr_s = best_seconds(kReps, [&] {
                           for (int i = 0; i < inner; ++i) spmv(a, x, y_csr);
                         }) /
                         inner;
    const double sell_s = best_seconds(kReps, [&] {
                            for (int i = 0; i < inner; ++i) sell.spmv(x, y_sell);
                          }) /
                          inner;
    const bool bitwise_equal =
        std::memcmp(y_csr.data(), y_sell.data(),
                    y_csr.size() * sizeof(value_t)) == 0;
    if (!bitwise_equal) ++correctness_diffs;

    const double flops = 2.0 * static_cast<double>(a.nnz());
    const double speedup = sell_s > 0.0 ? csr_s / sell_s : 0.0;
    if (speedup >= 1.2) ++sell_faster;
    max_padding = std::max(max_padding, sell.padding_ratio());

    JsonValue m = JsonValue::object();
    m["name"] = entry.name;
    m["rows"] = a.rows();
    m["nnz"] = a.nnz();
    m["padding_ratio"] = sell.padding_ratio();
    m["csr_gflops"] = csr_s > 0.0 ? flops / csr_s * 1e-9 : 0.0;
    m["sell_gflops"] = sell_s > 0.0 ? flops / sell_s * 1e-9 : 0.0;
    m["sell_speedup"] = speedup;
    m["bitwise_equal"] = bitwise_equal;
    m["csr_x_misses"] = replay_spmv_x_accesses(a, cache).misses;
    m["sell_x_misses"] = replay_sell_spmv_x_accesses(sell, cache).misses;
    matrices.push_back(std::move(m));
    std::cout << entry.name << ": sell " << (speedup >= 1.2 ? "fast" : "slow")
              << " x" << speedup << ", padding " << sell.padding_ratio()
              << (bitwise_equal ? "" : "  BITWISE DIFF") << "\n";
  }

  // Fused vs separate CG vector sweeps (bitwise-identical by construction;
  // the artifact records the verdict anyway so the gate can enforce it).
  constexpr std::size_t kSweepN = 1'000'000;
  constexpr int kSweepInner = 10;
  Rng rng(7);
  std::vector<value_t> u(kSweepN), w(kSweepN);
  for (auto& v : u) v = rng.next_uniform(-1.0, 1.0);
  for (auto& v : w) v = rng.next_uniform(-1.0, 1.0);
  std::vector<value_t> p1(kSweepN, 0.1), s1(kSweepN, 0.2), r1(kSweepN, 0.3);
  const value_t beta = 0.375;
  const value_t malpha = -0.625;
  auto p2 = p1;
  auto s2 = s1;
  auto r2 = r1;
  const double separate_s = best_seconds(kReps, [&] {
                              for (int i = 0; i < kSweepInner; ++i) {
                                xpby(u, beta, p1);
                                xpby(w, beta, s1);
                                axpy(malpha, s1, r1);
                              }
                            }) /
                            kSweepInner;
  const double fused_s = best_seconds(kReps, [&] {
                           for (int i = 0; i < kSweepInner; ++i) {
                             fused_cg_sweep(u, w, beta, malpha, p2, s2, r2);
                           }
                         }) /
                         kSweepInner;
  const bool sweep_equal =
      std::memcmp(p1.data(), p2.data(), kSweepN * sizeof(value_t)) == 0 &&
      std::memcmp(s1.data(), s2.data(), kSweepN * sizeof(value_t)) == 0 &&
      std::memcmp(r1.data(), r2.data(), kSweepN * sizeof(value_t)) == 0;
  if (!sweep_equal) ++correctness_diffs;

  JsonValue doc = JsonValue::object();
  doc["schema"] = "fsaic.bench.kernels/v1";
  doc["bench"] = "micro_kernels";
  JsonValue config = JsonValue::object();
  config["sell_chunk"] = kChunk;
  config["sell_sigma"] = kSigma;
  config["reps"] = kReps;
  config["sweep_n"] = static_cast<std::int64_t>(kSweepN);
  doc["config"] = std::move(config);
  doc["matrices"] = std::move(matrices);
  JsonValue sweeps = JsonValue::object();
  sweeps["n"] = static_cast<std::int64_t>(kSweepN);
  sweeps["separate_seconds"] = separate_s;
  sweeps["fused_seconds"] = fused_s;
  sweeps["fused_speedup"] = fused_s > 0.0 ? separate_s / fused_s : 0.0;
  sweeps["bitwise_equal"] = sweep_equal;
  doc["sweeps"] = std::move(sweeps);
  JsonValue summary = JsonValue::object();
  summary["matrices"] = static_cast<std::int64_t>(suite.size());
  summary["sell_faster_count"] = sell_faster;
  summary["max_padding_ratio"] = max_padding;
  summary["correctness_diffs"] = correctness_diffs;
  doc["summary"] = std::move(summary);

  atomic_write_file(out_path, doc.dump() + "\n");
  std::cout << "kernel study: sell >=1.2x on " << sell_faster << "/"
            << suite.size() << " matrices, fused sweep x"
            << (fused_s > 0.0 ? separate_s / fused_s : 0.0) << ", "
            << correctness_diffs << " correctness diffs -> " << out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Artifact mode: the CI kernel-smoke job sets FSAIC_KERNELS_BENCH_OUT and
  // consumes BENCH_kernels.json; without it this is a normal
  // google-benchmark binary.
  if (const char* out = std::getenv("FSAIC_KERNELS_BENCH_OUT");
      out != nullptr && *out != '\0') {
    return run_kernels_bench(out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
