// Ablation: cache-line size sweep. The paper treats the line size as a
// hardware given (64 B on Skylake/Zen 2, 256 B on A64FX) and attributes the
// A64FX's larger gains to its wider lines; this ablation sweeps the
// extension granularity from 32 B to 512 B on one machine model to expose
// the full curve — added entries, iteration decrease and modeled time
// decrease per line size.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — extension granularity (cache-line size sweep)",
               "extends HPDC'22 Sections 5.3/5.4 (64 B vs 256 B comparison)");

  // Machine model fixed (Skylake timing constants); only the extension's
  // line size varies, isolating the pattern-granularity effect.
  TextTable table({"line.B", "avg.+%NNZ", "avg.iter.dec%", "avg.time.dec%"});
  for (const int line : {32, 64, 128, 256, 512}) {
    ExperimentConfig cfg;
    cfg.machine = machine_skylake();
    cfg.machine.l1.line_bytes = line;
    // Keep the set count constant so capacity effects stay fixed.
    cfg.machine.l1.size_bytes = 32 * 1024 / 64 * line;
    ExperimentRunner runner(cfg);

    double nnz = 0.0;
    double it = 0.0;
    double tm = 0.0;
    int count = 0;
    for (const auto& entry : small_suite()) {
      const auto& base = runner.baseline(entry);
      const auto& comm = runner.run(
          entry, {ExtensionMode::CommAware, FilterStrategy::Dynamic, 0.01});
      const auto imp = improvement_over(base, comm);
      nnz += comm.nnz_increase_pct;
      it += imp.iterations_pct;
      tm += imp.time_pct;
      ++count;
    }
    table.add_row({std::to_string(line), pct2(nnz / count), pct2(it / count),
                   pct2(tm / count)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: added entries and iteration gains grow "
               "monotonically with the line size; time gains saturate once "
               "the extra entries' streaming cost catches up.\n";
  return 0;
}
