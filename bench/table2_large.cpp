// Table 2 reproduction: the 8-matrix large suite on the Zen 2 model with
// dynamic Filter 0.01, more simulated ranks (the paper's runs reach 32,768
// cores; the simulation scales the rank count with the matrix size up to 64
// ranks).
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 2 — large suite, Zen 2, dynamic Filter 0.01",
               "HPDC'22 Table 2 (solving times, iterations, %NNZ)");
  ExperimentConfig cfg;
  cfg.machine = machine_zen2();
  cfg.nnz_per_rank = 8000;
  cfg.max_ranks = 64;
  ExperimentRunner runner(cfg);
  print_matrix_table(runner, large_suite(), 0.01);
  return 0;
}
