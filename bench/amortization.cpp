// Setup amortization analysis: the paper's tables exclude preconditioner
// setup from "solver time", but FSAIE/FSAIE-Comm pay roughly twice the FSAI
// setup (provisional + final factor). This bench answers the practical
// question: after how many right-hand sides does the extension's per-solve
// gain pay back its extra setup? (The paper's evaluation runs 50 repetitions
// per system, comfortably past every break-even point seen here.)
#include "bench_common.hpp"

#include "perf/setup_cost.hpp"
#include "solver/pcg.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Setup amortization — when does the extension pay off?",
               "extends HPDC'22 Section 5.1 (setup excluded from solver time)");

  const Machine machine = machine_a64fx();
  const int threads = 8;
  const CostModel cost(machine, {.threads_per_rank = threads});

  TextTable table({"Matrix", "setup.fsai", "setup.comm", "solve.fsai",
                   "solve.comm", "breakeven.solves"});
  double worst_breakeven = 0.0;
  for (const char* name :
       {"thermal2", "Fault_639", "af_shell7", "nd24k", "gyro_k", "ecology2"}) {
    const auto& entry = suite_entry(name);
    ExperimentConfig cfg;
    cfg.machine = machine;
    cfg.threads_per_rank = threads;
    ExperimentRunner runner(cfg);
    const auto& sys = runner.prepare(entry);

    const auto evaluate = [&](ExtensionMode mode) {
      FsaiOptions opts;
      opts.extension = mode;
      opts.cache_line_bytes = machine.l1.line_bytes;
      opts.filter = mode == ExtensionMode::None ? 0.0 : 0.01;
      opts.filter_strategy = FilterStrategy::Dynamic;
      const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const auto precond = make_factorized_preconditioner(build, "m");
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, *precond, cfg.solve);
      const double solve_time =
          r.iterations *
          cost.pcg_iteration_cost(sys.a_dist, build.g_dist, build.gt_dist)
              .total();
      const double setup_time =
          estimate_build_setup(build, sys.layout, machine, threads).time;
      return std::pair{setup_time, solve_time};
    };

    const auto [setup_fsai, solve_fsai] = evaluate(ExtensionMode::None);
    const auto [setup_comm, solve_comm] = evaluate(ExtensionMode::CommAware);
    const double breakeven =
        solves_to_amortize(setup_fsai, solve_fsai, setup_comm, solve_comm);
    worst_breakeven = std::max(worst_breakeven, breakeven);
    table.add_row({entry.name, sci2(setup_fsai), sci2(setup_comm),
                   sci2(solve_fsai), sci2(solve_comm),
                   strformat("%.1f", breakeven)});
  }
  table.print(std::cout);
  std::cout << strformat(
      "\nWorst break-even: %.1f solves. The paper times 50 repetitions per "
      "system; typical production workloads (transient simulations) solve "
      "with the same matrix hundreds of times.\n",
      worst_breakeven);
  return 0;
}
