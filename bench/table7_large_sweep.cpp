// Table 7 reproduction: Zen 2 large-suite averages for FSAIE-Comm with
// dynamic filters (the paper's up-to-32,768-core runs; here up to 64
// simulated ranks).
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 7 — FSAIE-Comm dynamic filter sweep, large suite, Zen 2",
               "HPDC'22 Table 7 (paper best filter: 13.89% iters, 12.59% time)");
  ExperimentConfig cfg;
  cfg.machine = machine_zen2();
  cfg.nnz_per_rank = 8000;
  cfg.max_ranks = 64;
  ExperimentRunner runner(cfg);
  print_sweep_block(runner, large_suite(), ExtensionMode::CommAware,
                    FilterStrategy::Dynamic, "FSAIE-Comm - Dynamic Filter");
  return 0;
}
