// Ablation: filter scope. Algorithm 2 filters only the *added* entries of
// the extension, which guarantees the preconditioner never falls below plain
// FSAI. The alternative — filtering every entry of G_ext, closer to Chow's
// original post-filtering — can shrink the factor below FSAI's pattern. This
// ablation compares both scopes across the filter sweep.
#include "bench_common.hpp"

#include "solver/pcg.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — filter scope: added-entries-only vs all entries",
               "extends HPDC'22 Algorithm 2 step 4");

  ExperimentConfig cfg;
  cfg.machine = machine_a64fx();
  ExperimentRunner runner(cfg);

  TextTable table({"Filter", "scope", "avg.+%NNZ", "avg.iter.dec%",
                   "avg.time.dec%", "worst.time.dec%"});
  for (const value_t filter : {0.05, 0.1, 0.2}) {
    for (const bool only_added : {true, false}) {
      double nnz = 0.0;
      double it = 0.0;
      double tm = 0.0;
      double worst = 1e300;
      int count = 0;
      for (const auto& entry : small_suite()) {
        const auto& sys = runner.prepare(entry);
        const auto& base = runner.baseline(entry);
        FsaiOptions opts;
        opts.extension = ExtensionMode::CommAware;
        opts.cache_line_bytes = cfg.machine.l1.line_bytes;
        opts.filter = filter;
        opts.filter_strategy = FilterStrategy::Dynamic;
        opts.filter_only_added = only_added;
        const auto build =
            build_fsai_preconditioner(sys.matrix, sys.layout, opts);
        const auto precond = make_factorized_preconditioner(build, "scope");
        DistVector x(sys.layout);
        const auto r = pcg_solve(sys.a_dist, sys.b, x, *precond, cfg.solve);
        const CostModel cost(cfg.machine, {cfg.threads_per_rank});
        const double t =
            r.iterations *
            cost.pcg_iteration_cost(sys.a_dist, build.g_dist, build.gt_dist)
                .total();
        const double time_dec =
            100.0 * (base.modeled_time - t) / base.modeled_time;
        nnz += build.nnz_increase_pct;
        it += 100.0 *
              (static_cast<double>(base.iterations) - r.iterations) /
              base.iterations;
        tm += time_dec;
        worst = std::min(worst, time_dec);
        ++count;
      }
      table.add_row({strformat("%.2f", static_cast<double>(filter)),
                     only_added ? "added-only" : "all-entries",
                     pct2(nnz / count), pct2(it / count), pct2(tm / count),
                     pct2(worst)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: at aggressive filters the all-entries scope "
               "can drop below the FSAI pattern (negative %NNZ) and risks "
               "larger worst-case degradations; added-only bounds the "
               "downside at exactly the FSAI baseline.\n";
  return 0;
}
