// Sparsity-level ablation: the classical way to enrich an FSAI pattern is
// to take a power of Ã (the paper cites A^2/A^3 as standard static
// patterns). This ablation pits level-2 FSAI against the cache-line
// extension route: both add entries, but the power pattern adds them by
// graph distance (numerically strong, communication-heavy) while the
// extension adds them by memory adjacency (numerically weaker per entry,
// free in traffic). It also combines them: FSAIE-Comm applied on top of the
// level-2 pattern.
#include "bench_common.hpp"

#include "dist/comm_scheme.hpp"
#include "solver/pcg.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Ablation — pattern powers (Ã^N) vs cache-line extension",
               "extends HPDC'22 Section 2.2 / related work (a-priori patterns)");

  const Machine machine = machine_a64fx();
  const CostModel cost(machine, {.threads_per_rank = 8});

  for (const char* name : {"thermal2", "Dubcova3"}) {
    const auto& entry = suite_entry(name);
    ExperimentConfig cfg;
    cfg.machine = machine;
    ExperimentRunner runner(cfg);
    const auto& sys = runner.prepare(entry);

    TextTable table({"config", "G.nnz", "iters", "halo.B(G)", "halo.msgs",
                     "modeled.time"});
    const auto run_config = [&](const std::string& label, const FsaiOptions& opts) {
      const auto build = build_fsai_preconditioner(sys.matrix, sys.layout, opts);
      const auto precond = make_factorized_preconditioner(build, label);
      DistVector x(sys.layout);
      const auto r = pcg_solve(sys.a_dist, sys.b, x, *precond, cfg.solve);
      const double t =
          r.iterations *
          cost.pcg_iteration_cost(sys.a_dist, build.g_dist, build.gt_dist)
              .total();
      table.add_row({label, std::to_string(build.g.nnz()),
                     std::to_string(r.iterations) + (r.converged ? "" : "*"),
                     std::to_string(build.g_dist.halo_update_bytes()),
                     std::to_string(build.g_dist.halo_update_messages()),
                     sci2(t)});
    };

    FsaiOptions opts;
    opts.cache_line_bytes = machine.l1.line_bytes;
    run_config("level-1 (lower(A))", opts);

    opts.extension = ExtensionMode::CommAware;
    opts.filter = 0.01;
    opts.filter_strategy = FilterStrategy::Dynamic;
    run_config("level-1 + fsaie-comm", opts);

    opts.extension = ExtensionMode::None;
    opts.filter = 0.0;
    opts.sparsity_level = 2;
    run_config("level-2 (lower(A^2))", opts);

    opts.extension = ExtensionMode::CommAware;
    opts.filter = 0.05;
    run_config("level-2 + fsaie-comm", opts);

    std::cout << entry.name << " (" << sys.matrix.rows() << " rows, "
              << sys.nranks << " ranks):\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading guide: level-2 buys the most iterations but grows "
               "halo bytes AND messages (new neighbor pairs appear); the "
               "extension's entries are free in traffic; the combination "
               "stacks both effects.\n";
  return 0;
}
