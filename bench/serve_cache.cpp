// Serving benchmark: what the factor cache buys a solve service. The paper's
// amortization argument (setup pays off over repeated right-hand sides) is
// exactly the workload a resident service sees — the same operator arrives
// again and again with fresh RHS vectors. This bench replays that pattern
// through SolveService and reports measured wall-clock: the first request
// per operator builds the factor (cache miss), every later request fetches
// it (cache hit) and must skip setup almost entirely while producing the
// exact same iteration count.
#include "bench_common.hpp"

#include <cstdlib>
#include <map>

#include "matgen/suite.hpp"
#include "service/solve_service.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Solve service — factor-cache amortization",
               "extends HPDC'22 Section 5.1 (repeated solves per system)");

  const int kRepeats = 4;  // requests per operator: 1 cold + 3 warm
  const char* report_path = std::getenv("FSAIC_REPORT");
  std::unique_ptr<RunReportWriter> report;
  if (report_path != nullptr && *report_path != '\0') {
    report = std::make_unique<RunReportWriter>(report_path);
  }

  std::map<std::string, SolveResponse> responses;
  ServiceOptions opts;
  opts.workers = 1;  // one worker: a strict cold-then-warm order
  opts.cache_capacity = 8;
  SolveService service(opts, [&responses](const SolveResponse& r) {
    responses[r.id] = r;
  });

  const std::vector<std::string> operators = {"thermal2", "ecology2",
                                              "parabolic_fem"};
  for (const auto& name : operators) {
    // Cold request first, drained before the warm ones so the repeats find
    // the factor in the cache rather than coalescing into the cold batch.
    // All repeats use the same RHS: a cache-hit solve of the same request
    // must reproduce the cold solve exactly.
    for (int rep = 0; rep < kRepeats; ++rep) {
      SolveRequest req;
      req.id = name + "#" + std::to_string(rep);
      req.generate = name;
      service.submit(req);
      if (rep == 0) service.drain();
    }
    service.drain();
  }

  TextTable table({"Matrix", "cold.setup.ms", "warm.setup.ms", "setup.speedup",
                   "cold.total.ms", "warm.total.ms", "iters.cold",
                   "iters.warm"});
  bool ok = true;
  for (const auto& name : operators) {
    const SolveResponse& cold = responses.at(name + "#0");
    double warm_setup_us = 0.0;
    double warm_total_us = 0.0;
    int warm_iters = cold.iterations;
    for (int rep = 1; rep < kRepeats; ++rep) {
      const SolveResponse& warm = responses.at(name + "#" + std::to_string(rep));
      ok = ok && warm.ok() && warm.cache == "hit";
      warm_setup_us += warm.setup_us;
      warm_total_us += warm.total_us;
      warm_iters = warm.iterations;
    }
    warm_setup_us /= kRepeats - 1;
    warm_total_us /= kRepeats - 1;
    ok = ok && cold.ok() && cold.cache == "miss" &&
         warm_setup_us < cold.setup_us && warm_iters == cold.iterations;
    for (int rep = 1; rep < kRepeats; ++rep) {
      ok = ok && responses.at(name + "#" + std::to_string(rep))
                         .final_residual == cold.final_residual;
    }
    table.add_row({name, strformat("%.2f", cold.setup_us / 1e3),
                   strformat("%.3f", warm_setup_us / 1e3),
                   strformat("%.1fx", cold.setup_us / warm_setup_us),
                   strformat("%.2f", cold.total_us / 1e3),
                   strformat("%.2f", warm_total_us / 1e3),
                   std::to_string(cold.iterations),
                   std::to_string(warm_iters)});
    if (report) {
      JsonValue rec = JsonValue::object();
      rec["bench"] = "serve_cache";
      rec["matrix"] = name;
      rec["cold_setup_us"] = cold.setup_us;
      rec["warm_setup_us"] = warm_setup_us;
      rec["cold_total_us"] = cold.total_us;
      rec["warm_total_us"] = warm_total_us;
      rec["iterations"] = cold.iterations;
      rec["iterations_match"] = (warm_iters == cold.iterations);
      report->write(rec);
    }
  }
  table.print(std::cout);

  const auto stats = service.stats();
  std::cout << strformat(
      "\ncache: %lld misses, %lld hits, %lld evictions over %lld requests\n",
      static_cast<long long>(stats.cache.misses),
      static_cast<long long>(stats.cache.hits),
      static_cast<long long>(stats.cache.evictions),
      static_cast<long long>(stats.completed));
  if (!ok) {
    std::cout << "FAILED: cache-hit solves must skip setup and preserve "
                 "iteration counts\n";
    return 1;
  }
  std::cout << "cache-hit solves skipped the factor build and reproduced the "
               "cold iteration counts exactly.\n";
  return 0;
}
