// Table 1 reproduction: the 39-matrix small suite on the Skylake model.
// Solver time (modeled seconds), iterations-to-convergence and % pattern
// entries added, for FSAI, FSAIE and FSAIE-Comm with a dynamic Filter of
// 0.01. The paper's reference iteration counts are printed alongside.
#include "bench_common.hpp"

int main() {
  using namespace fsaic;
  using namespace fsaic::bench;
  print_header("Table 1 — small suite, Skylake, dynamic Filter 0.01",
               "HPDC'22 Table 1 (solving times, iterations, %NNZ)");
  ExperimentConfig cfg;
  cfg.machine = machine_skylake();
  ExperimentRunner runner(cfg);
  const auto report = attach_env_report(runner);
  print_matrix_table(runner, small_suite(), 0.01);
  return 0;
}
