// Section 5.3.3 reproduction: the dynamic filtering-out case study. The
// paper reports (matrix 17, consph) a partition whose G/G^T imbalance index
// of 0.88 drops to 0.75 under an unfiltered extension and recovers to 0.82
// with the dynamic filter, converting the iteration gain into a real time
// gain.
//
// The synthetic recreation: a heterogeneous system whose first region is a
// sparse 5-point 2D grid and whose second region is a denser 7-point 3D
// grid, partitioned so the nonzeros of A are balanced. The sparse rows gain
// relatively more entries under a 256 B cache-line extension than the dense
// rows, so the extension unbalances the factor exactly as in the paper's
// case — and Algorithm 4 trims the overloaded rank back.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "matgen/generators.hpp"
#include "solver/pcg.hpp"
#include "sparse/coo.hpp"

namespace {

using namespace fsaic;

/// Sparse 5-point region (rows [0, n5)) weakly coupled to a denser 7-point
/// region (rows [n5, n5+n7^3)).
CsrMatrix heterogeneous_system(index_t nx5, index_t ny5, index_t n7) {
  const CsrMatrix sparse_region = poisson2d(nx5, ny5);
  const CsrMatrix dense_region = poisson3d(n7, n7, n7);
  const index_t n5 = sparse_region.rows();
  const index_t n = n5 + dense_region.rows();
  CooBuilder c(n, n);
  for (index_t i = 0; i < n5; ++i) {
    const auto cols = sparse_region.row_cols(i);
    const auto vals = sparse_region.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      c.add(i, cols[k], vals[k]);
    }
  }
  for (index_t i = 0; i < dense_region.rows(); ++i) {
    const auto cols = dense_region.row_cols(i);
    const auto vals = dense_region.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      c.add(n5 + i, n5 + cols[k], vals[k]);
    }
  }
  // Weak bridge keeps the operator connected (and SPD: diagonal compensated).
  c.add_symmetric(n5 - 1, n5, -0.01);
  c.add(n5 - 1, n5 - 1, 0.01);
  c.add(n5, n5, 0.01);
  return c.to_csr();
}

}  // namespace

int main() {
  using namespace fsaic::bench;
  print_header("Imbalance case study — dynamic vs static filtering",
               "HPDC'22 Section 5.3.3 (imbalance 0.88 → 0.75 → 0.82)");

  // Rank 0 owns the sparse 2D region; ranks 1-3 split the 3D region. The
  // 5-point rows triple under a 256 B extension while the 7-point rows grow
  // less, so the extension unbalances a decomposition that was acceptable
  // for A.
  const CsrMatrix a = heterogeneous_system(54, 40, 14);
  const index_t n5 = 54 * 40;
  const index_t n = a.rows();
  std::vector<index_t> begin{0, n5};
  for (rank_t p = 1; p <= 3; ++p) {
    begin.push_back(n5 + (n - n5) * p / 3);
  }
  const Layout layout(std::move(begin));
  const DistCsr a_dist = DistCsr::distribute(a, layout);

  Rng rng(5333);
  std::vector<value_t> bg(static_cast<std::size_t>(n));
  for (auto& v : bg) v = rng.next_uniform(-1.0, 1.0);
  const DistVector b(layout, bg);
  const CostModel cost(machine_a64fx(), {.threads_per_rank = 8});

  TextTable table({"method", "imb.G(avg/max)", "iters", "iter.dec%",
                   "modeled.time", "time.dec%"});
  double base_time = 0.0;
  int base_iters = 0;
  const auto run_case = [&](const std::string& label, const FsaiOptions& opts) {
    const auto build = build_fsai_preconditioner(a, layout, opts);
    const auto precond = make_factorized_preconditioner(build, label);
    DistVector x(layout);
    const auto r = pcg_solve(a_dist, b, x, *precond,
                             {.rel_tol = 1e-8, .max_iterations = 10000});
    const double t =
        r.iterations *
        cost.pcg_iteration_cost(a_dist, build.g_dist, build.gt_dist).total();
    if (label == "fsai") {
      base_time = t;
      base_iters = r.iterations;
    }
    table.add_row(
        {label, strformat("%.3f", build.imbalance_avg()),
         std::to_string(r.iterations),
         pct2(100.0 * (base_iters - r.iterations) / base_iters),
         sci2(t), pct2(100.0 * (base_time - t) / base_time)});
  };

  FsaiOptions opts;
  opts.cache_line_bytes = 256;
  opts.extension = ExtensionMode::None;
  run_case("fsai", opts);

  opts.extension = ExtensionMode::CommAware;
  opts.filter = 0.0;
  run_case("fsaie-comm unfiltered", opts);

  opts.filter = 0.01;
  opts.filter_strategy = FilterStrategy::Static;
  run_case("fsaie-comm static 0.01", opts);

  opts.filter_strategy = FilterStrategy::Dynamic;
  run_case("fsaie-comm dynamic 0.01", opts);

  table.print(std::cout);
  std::cout << "\nExpected shape (paper Section 5.3.3): the unfiltered "
               "extension worsens the imbalance index, static filtering only "
               "partially recovers it, and the dynamic filter restores "
               "balance and delivers the best modeled time decrease.\n";
  return 0;
}
